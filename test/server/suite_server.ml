(* End-to-end: a real server on a Unix socket, real client
   connections, oracle-checked replies. *)

module P = Xpose_server.Protocol
module Server = Xpose_server.Server
module Client = Xpose_server.Client
module S = Xpose_core.Storage.Float64
module M = Xpose_obs.Metrics

let socket_counter = ref 0

let fresh_socket_path () =
  incr socket_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xpose_t%d_%d.sock" (Unix.getpid ()) !socket_counter)

let with_server config f =
  let t = Server.start config in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f ())

let iota mn =
  let b = S.create mn in
  for i = 0 to mn - 1 do
    S.set b i (float_of_int i)
  done;
  b

(* The transpose of iota(m*n): element l of the n x m result is
   n * (l mod m) + l / m. *)
let check_result ~m ~n = function
  | P.Result { m = rm; n = rn; payload; _ } ->
      Alcotest.(check int) "result rows" n rm;
      Alcotest.(check int) "result cols" m rn;
      let ok = ref true in
      for l = 0 to (m * n) - 1 do
        let expected = float_of_int ((n * (l mod m)) + (l / m)) in
        if S.get payload l <> expected then ok := false
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%dx%d reply matches the oracle" m n)
        true !ok
  | P.Busy _ -> Alcotest.fail "unexpected Busy reply"
  | P.Error_reply { message; _ } -> Alcotest.failf "server error: %s" message
  | P.Stats_reply _ -> Alcotest.fail "unexpected Stats reply"

let counter_value name = M.counter_value (M.counter name)

(* -- basic round trip ------------------------------------------------- *)

let test_roundtrip () =
  let config = Server.default_config ~socket_path:(fresh_socket_path ()) in
  with_server config (fun () ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          check_result ~m:32 ~n:17 (Client.transpose c ~m:32 ~n:17 (iota (32 * 17)));
          check_result ~m:1 ~n:64 (Client.transpose c ~m:1 ~n:64 (iota 64));
          check_result ~m:5 ~n:5
            (Client.transpose c ~priority:P.High ~m:5 ~n:5 (iota 25));
          let json = Client.stats c in
          Alcotest.(check bool) "stats is a counters snapshot" true
            (let has needle =
               let rec go i =
                 i + String.length needle <= String.length json
                 && (String.sub json i (String.length needle) = needle
                    || go (i + 1))
               in
               go 0
             in
             has "\"counters\"" && has "server.requests")))

(* -- coalescing ------------------------------------------------------- *)

let test_coalescing () =
  let config =
    {
      (Server.default_config ~socket_path:(fresh_socket_path ())) with
      Server.coalesce_window_ns = 1_000_000_000;
      max_batch = 3;
    }
  in
  with_server config (fun () ->
      let batches0 = counter_value "server.batches" in
      let jobs0 = counter_value "server.batched_jobs" in
      let m = 16 and n = 16 in
      let failures = Atomic.make 0 in
      let client_thread () =
        Thread.create
          (fun () ->
            try
              Client.with_client ~socket_path:config.Server.socket_path
                (fun c ->
                  check_result ~m ~n (Client.transpose c ~m ~n (iota (m * n))))
            with _ -> Atomic.incr failures)
          ()
      in
      let threads = List.init 3 (fun _ -> client_thread ()) in
      List.iter Thread.join threads;
      Alcotest.(check int) "every client got a correct reply" 0
        (Atomic.get failures);
      let batches = counter_value "server.batches" - batches0 in
      let jobs = counter_value "server.batched_jobs" - jobs0 in
      Alcotest.(check int) "three jobs went through the coalescer" 3 jobs;
      (* With a 1 s window, the three concurrent same-shape requests
         group; the full-batch path dispatches them without waiting out
         the window. *)
      Alcotest.(check bool)
        (Printf.sprintf "some coalescing happened (%d batches for 3 jobs)"
           batches)
        true (batches < 3))

(* -- ooc routing ------------------------------------------------------ *)

let test_ooc_routing () =
  let config =
    {
      (Server.default_config ~socket_path:(fresh_socket_path ())) with
      Server.tenants =
        [
          {
            Xpose_server.Admission.name = "tiny";
            quota_bytes = 1024;
            window_bytes = 65536;
          };
        ];
    }
  in
  with_server config (fun () ->
      let ooc0 = counter_value "server.admit.ooc" in
      let fused0 = counter_value "server.admit.fused" in
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          (* 32x32 f64 = 8 KiB, over the tenant's 1 KiB quota: the ooc
             engine serves it, and the reply is still oracle-exact. *)
          check_result ~m:32 ~n:32
            (Client.transpose c ~tenant:"tiny" ~m:32 ~n:32 (iota 1024));
          (* The same job from an unconfigured tenant stays in memory. *)
          check_result ~m:32 ~n:32
            (Client.transpose c ~tenant:"other" ~m:32 ~n:32 (iota 1024)));
      Alcotest.(check int) "over-quota job routed out of core" 1
        (counter_value "server.admit.ooc" - ooc0);
      Alcotest.(check int) "default-tenant job ran fused" 1
        (counter_value "server.admit.fused" - fused0))

(* -- backpressure ----------------------------------------------------- *)

let test_backpressure () =
  let config =
    {
      (Server.default_config ~socket_path:(fresh_socket_path ())) with
      Server.budget_bytes = 4096;
    }
  in
  with_server config (fun () ->
      let rejects0 = counter_value "server.rejects.budget" in
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          (* 8 KiB payload against a 4 KiB global budget: an explicit
             Busy reply, not a timeout, and nothing is queued. *)
          (match Client.transpose c ~m:32 ~n:32 (iota 1024) with
          | P.Busy { reason = P.Budget_exhausted; _ } -> ()
          | P.Busy { reason = P.Queue_full; _ } ->
              Alcotest.fail "expected a budget rejection, got queue-full"
          | P.Result _ -> Alcotest.fail "over-budget job was served"
          | P.Error_reply { message; _ } -> Alcotest.failf "error: %s" message
          | P.Stats_reply _ -> Alcotest.fail "unexpected stats reply");
          (* The connection survives backpressure, and a job that fits
             the budget still goes through. *)
          check_result ~m:16 ~n:16 (Client.transpose c ~m:16 ~n:16 (iota 256)));
      Alcotest.(check int) "rejection was counted" 1
        (counter_value "server.rejects.budget" - rejects0))

(* -- protocol errors on a live connection ----------------------------- *)

let test_protocol_error_keeps_connection () =
  let config = Server.default_config ~socket_path:(fresh_socket_path ()) in
  with_server config (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX config.Server.socket_path);
          (* A frame with an unknown tag: the server must answer with a
             protocol error reply, not drop the connection or die. *)
          P.write_frame fd (Bytes.of_string "\x7f\x00\x00\x00\x01");
          (match P.read_frame fd with
          | Ok body -> (
              match P.decode_response body with
              | Ok (P.Error_reply _) -> ()
              | Ok _ -> Alcotest.fail "expected an Error_reply"
              | Error e -> Alcotest.failf "undecodable reply: %s"
                  (P.error_to_string e))
          | Error _ -> Alcotest.fail "no reply to a corrupt frame");
          (* The same connection still serves valid requests. *)
          P.write_frame fd (P.encode_request (P.Stats { id = 42 }));
          match P.read_frame fd with
          | Ok body -> (
              match P.decode_response body with
              | Ok (P.Stats_reply { id = 42; _ }) -> ()
              | _ -> Alcotest.fail "expected Stats_reply with id 42")
          | Error _ -> Alcotest.fail "connection did not survive the error"))

let test_overflow_frame_keeps_connection () =
  let config = Server.default_config ~socket_path:(fresh_socket_path ()) in
  with_server config (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX config.Server.socket_path);
          (* A ~25-byte frame claiming a 2^31 x 2^31 payload: the byte
             count wraps a 64-bit int, so a multiply-then-compare guard
             would admit it and the allocation would kill the reader.
             The server must answer with a protocol error and live. *)
          P.write_frame fd
            (Bytes.of_string
               "\x01\x00\x00\x00\x2a\x01\x00\x00\x00\x00\x00\x00\x80\x00\x00\x00\x80\x00\x00\x00");
          (match P.read_frame fd with
          | Ok body -> (
              match P.decode_response body with
              | Ok (P.Error_reply _) -> ()
              | Ok _ -> Alcotest.fail "expected an Error_reply"
              | Error e ->
                  Alcotest.failf "undecodable reply: %s" (P.error_to_string e))
          | Error _ -> Alcotest.fail "no reply to the overflowing frame");
          (* The reader thread survived: the connection still serves. *)
          P.write_frame fd (P.encode_request (P.Stats { id = 7 }));
          match P.read_frame fd with
          | Ok body -> (
              match P.decode_response body with
              | Ok (P.Stats_reply { id = 7; _ }) -> ()
              | _ -> Alcotest.fail "expected Stats_reply with id 7")
          | Error _ ->
              Alcotest.fail "connection did not survive the overflow frame"))

(* -- connection reclamation ------------------------------------------- *)

let test_connections_reclaimed () =
  let config = Server.default_config ~socket_path:(fresh_socket_path ()) in
  let t = Server.start config in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      (* Serve a burst of short-lived clients; once they disconnect and
         their replies are out, the server must let go of every fd and
         conn record — not hold them until stop. *)
      for _ = 1 to 8 do
        Client.with_client ~socket_path:config.Server.socket_path (fun c ->
            check_result ~m:8 ~n:8 (Client.transpose c ~m:8 ~n:8 (iota 64)))
      done;
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        let live = Server.live_connections t in
        if live = 0 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.failf "%d connections still held after clients left" live
        else begin
          Thread.yield ();
          Unix.sleepf 0.01;
          wait ()
        end
      in
      wait ())

(* -- shutdown --------------------------------------------------------- *)

let test_stop_idempotent () =
  let config = Server.default_config ~socket_path:(fresh_socket_path ()) in
  let t = Server.start config in
  Client.with_client ~socket_path:config.Server.socket_path (fun c ->
      check_result ~m:8 ~n:8 (Client.transpose c ~m:8 ~n:8 (iota 64)));
  Server.stop t;
  Server.stop t;
  Alcotest.(check bool) "socket file removed" false
    (Sys.file_exists config.Server.socket_path);
  (* The metrics snapshot keeps working after shutdown. *)
  let json = Server.stats_json () in
  Alcotest.(check bool) "stats_json still renders" true
    (String.length json > 0)

(* -- end-to-end request tracing --------------------------------------- *)

module Tracer = Xpose_obs.Tracer

let carries_trace trace (e : Tracer.event) =
  List.exists
    (fun (k, v) -> k = "trace" && v = Tracer.Int trace)
    e.Tracer.args

let test_trace_propagation () =
  let config = Server.default_config ~socket_path:(fresh_socket_path ()) in
  Tracer.clear ();
  Tracer.start ();
  Fun.protect
    ~finally:(fun () ->
      Tracer.stop ();
      Tracer.clear ())
    (fun () ->
      let trace = 0x00ab_cdef in
      with_server config (fun () ->
          Client.with_client ~socket_path:config.Server.socket_path (fun c ->
              check_result ~m:16 ~n:16
                (Client.transpose c ~trace ~m:16 ~n:16 (iota 256))));
      let events = Tracer.events () in
      let named name =
        List.filter (fun e -> e.Tracer.name = name) events
      in
      (* One request, one trace: the client anchor, the two retroactive
         queue spans, the dispatch span, and at least one engine pass
         must all exist and carry the same trace id. *)
      List.iter
        (fun name ->
          match named name with
          | [] -> Alcotest.failf "no %s span recorded" name
          | es ->
              Alcotest.(check bool)
                (name ^ " carries the trace id")
                true
                (List.exists (carries_trace trace) es))
        [ "client.submit"; "server.queue_wait"; "server.coalesce";
          "server.dispatch" ];
      let traced_passes =
        List.filter
          (fun e -> e.Tracer.cat = "pass" && carries_trace trace e)
          events
      in
      Alcotest.(check bool)
        (Printf.sprintf "engine passes carry the trace id (%d)"
           (List.length traced_passes))
        true
        (List.length traced_passes >= 1);
      (* and timing nests: the client span spans the whole round trip *)
      match (named "client.submit", named "server.dispatch") with
      | [ submit ], dispatch :: _ ->
          Alcotest.(check bool) "dispatch starts after submit" true
            (dispatch.Tracer.ts_ns >= submit.Tracer.ts_ns)
      | _ -> Alcotest.fail "expected exactly one client.submit span")

let test_queue_wait_histograms () =
  let config = Server.default_config ~socket_path:(fresh_socket_path ()) in
  let count name = M.histogram_count (M.histogram name) in
  let qw0 = count "server.queue_wait_ns" in
  let co0 = count "server.coalesce_delay_ns" in
  with_server config (fun () ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          check_result ~m:8 ~n:8 (Client.transpose c ~m:8 ~n:8 (iota 64))));
  Alcotest.(check int) "queue wait observed once" 1
    (count "server.queue_wait_ns" - qw0);
  Alcotest.(check int) "coalesce delay observed once" 1
    (count "server.coalesce_delay_ns" - co0)

(* S2: the drain path flushes the trace sink, so a server torn down by a
   signal still leaves a complete trace file behind. *)
let test_shutdown_flushes_sink () =
  let config = Server.default_config ~socket_path:(fresh_socket_path ()) in
  let flushed = ref [] in
  Tracer.clear ();
  Tracer.set_sink (Some (fun evs -> flushed := evs));
  Tracer.start ();
  Fun.protect
    ~finally:(fun () ->
      Tracer.set_sink None;
      Tracer.stop ();
      Tracer.clear ())
    (fun () ->
      let t = Server.start config in
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          check_result ~m:8 ~n:8 (Client.transpose c ~m:8 ~n:8 (iota 64)));
      Server.stop t;
      Alcotest.(check bool)
        (Printf.sprintf "stop flushed the sink (%d events)"
           (List.length !flushed))
        true
        (List.length !flushed > 0);
      Alcotest.(check bool) "flush included a server span" true
        (List.exists
           (fun e -> e.Tracer.cat = "server")
           !flushed))

(* -- Prometheus exposition over the wire ------------------------------ *)

let test_stats_text () =
  let config = Server.default_config ~socket_path:(fresh_socket_path ()) in
  with_server config (fun () ->
      Client.with_client ~socket_path:config.Server.socket_path (fun c ->
          check_result ~m:8 ~n:8 (Client.transpose c ~m:8 ~n:8 (iota 64));
          let text = Client.stats_text c in
          let has needle =
            let rec go i =
              i + String.length needle <= String.length text
              && (String.sub text i (String.length needle) = needle
                 || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "has TYPE lines" true (has "# TYPE ");
          Alcotest.(check bool) "sanitized server counter" true
            (has "server_requests");
          Alcotest.(check bool) "queue-wait histogram exposed" true
            (has "server_queue_wait_ns_bucket")))

let test_metrics_file () =
  let file = Filename.temp_file "xpose_metrics" ".prom" in
  Sys.remove file;
  let config =
    {
      (Server.default_config ~socket_path:(fresh_socket_path ())) with
      Server.metrics_file = Some file;
      metrics_interval_s = 0.05;
    }
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      with_server config (fun () ->
          Client.with_client ~socket_path:config.Server.socket_path (fun c ->
              check_result ~m:8 ~n:8 (Client.transpose c ~m:8 ~n:8 (iota 64))));
      (* stop wrote a final snapshot on the way out *)
      Alcotest.(check bool) "metrics file exists" true (Sys.file_exists file);
      let ic = open_in file in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check bool) "file holds the exposition" true
        (String.length text > 0
        && String.sub text 0 7 = "# TYPE "))

let tests =
  [
    Alcotest.test_case "round trip with oracle check" `Quick test_roundtrip;
    Alcotest.test_case "trace id propagates end to end" `Quick
      test_trace_propagation;
    Alcotest.test_case "queue-wait histograms observe" `Quick
      test_queue_wait_histograms;
    Alcotest.test_case "shutdown flushes the trace sink" `Quick
      test_shutdown_flushes_sink;
    Alcotest.test_case "stats_text serves the exposition" `Quick
      test_stats_text;
    Alcotest.test_case "metrics file is written" `Quick test_metrics_file;
    Alcotest.test_case "same-shape requests coalesce" `Quick test_coalescing;
    Alcotest.test_case "over-quota jobs route to ooc" `Quick test_ooc_routing;
    Alcotest.test_case "budget backpressure" `Quick test_backpressure;
    Alcotest.test_case "protocol error keeps the connection" `Quick
      test_protocol_error_keeps_connection;
    Alcotest.test_case "overflowing frame keeps the connection" `Quick
      test_overflow_frame_keeps_connection;
    Alcotest.test_case "connections are reclaimed" `Quick
      test_connections_reclaimed;
    Alcotest.test_case "stop is idempotent" `Quick test_stop_idempotent;
  ]
