module P = Xpose_server.Protocol
module Q = Xpose_server.Job_queue

let offer_ok q ~priority ~bytes job =
  match Q.offer q ~priority ~bytes job with
  | `Ok -> ()
  | `Queue_full -> Alcotest.fail "unexpected `Queue_full"
  | `Bytes_full -> Alcotest.fail "unexpected `Bytes_full"

let test_priority_order () =
  let q = Q.create () in
  offer_ok q ~priority:P.Low ~bytes:1 "l1";
  offer_ok q ~priority:P.Normal ~bytes:1 "n1";
  offer_ok q ~priority:P.High ~bytes:1 "h1";
  offer_ok q ~priority:P.Normal ~bytes:1 "n2";
  offer_ok q ~priority:P.High ~bytes:1 "h2";
  let drain () =
    let rec go acc =
      match Q.pop q with
      | Some (_, _, j) -> go (j :: acc)
      | None -> List.rev acc
    in
    go []
  in
  Alcotest.(check (list string))
    "high first, FIFO within a lane"
    [ "h1"; "h2"; "n1"; "n2"; "l1" ]
    (drain ());
  Alcotest.(check int) "drained" 0 (Q.length q);
  Alcotest.(check int) "no bytes left" 0 (Q.bytes q)

let test_pop_reports_priority_and_bytes () =
  let q = Q.create () in
  offer_ok q ~priority:P.Normal ~bytes:48 "j";
  match Q.pop q with
  | Some (P.Normal, 48, "j") -> ()
  | _ -> Alcotest.fail "pop must return the lane and accounted bytes"

let test_job_count_limit () =
  let q = Q.create ~max_jobs:2 () in
  offer_ok q ~priority:P.Normal ~bytes:1 "a";
  offer_ok q ~priority:P.Normal ~bytes:1 "b";
  (match Q.offer q ~priority:P.Normal ~bytes:1 "c" with
  | `Queue_full -> ()
  | _ -> Alcotest.fail "third job in a 2-job lane must be refused");
  (* The cap is per lane: another priority still has room. *)
  offer_ok q ~priority:P.High ~bytes:1 "h";
  Alcotest.(check int) "refused job was not queued" 3 (Q.length q);
  (* Popping a job from the full lane frees a slot there. The high
     lane is served first, so drain it out of the way. *)
  ignore (Q.pop q);
  ignore (Q.pop q);
  offer_ok q ~priority:P.Normal ~bytes:1 "c'"

let test_byte_limit () =
  let q = Q.create ~max_bytes:100 () in
  offer_ok q ~priority:P.Normal ~bytes:60 "a";
  (match Q.offer q ~priority:P.High ~bytes:60 "b" with
  | `Bytes_full -> ()
  | _ -> Alcotest.fail "byte cap is shared across lanes");
  Alcotest.(check int) "bytes tracked" 60 (Q.bytes q);
  offer_ok q ~priority:P.High ~bytes:40 "c";
  Alcotest.(check int) "at the cap exactly" 100 (Q.bytes q);
  (* pop serves the high lane first, releasing its 40 bytes *)
  (match Q.pop q with
  | Some (P.High, 40, "c") -> ()
  | _ -> Alcotest.fail "expected the high-lane job first");
  Alcotest.(check int) "bytes released on pop" 60 (Q.bytes q);
  offer_ok q ~priority:P.Normal ~bytes:40 "d"

let test_depth () =
  let q = Q.create () in
  offer_ok q ~priority:P.Low ~bytes:1 "a";
  offer_ok q ~priority:P.Low ~bytes:1 "b";
  offer_ok q ~priority:P.High ~bytes:1 "c";
  Alcotest.(check int) "low depth" 2 (Q.depth q P.Low);
  Alcotest.(check int) "high depth" 1 (Q.depth q P.High);
  Alcotest.(check int) "normal depth" 0 (Q.depth q P.Normal)

let test_invalid () =
  Alcotest.check_raises "max_jobs >= 1"
    (Invalid_argument "Job_queue.create: max_jobs must be >= 1") (fun () ->
      ignore (Q.create ~max_jobs:0 ()));
  Alcotest.check_raises "max_bytes >= 1"
    (Invalid_argument "Job_queue.create: max_bytes must be >= 1") (fun () ->
      ignore (Q.create ~max_bytes:0 ()))

let tests =
  [
    Alcotest.test_case "priority ordering" `Quick test_priority_order;
    Alcotest.test_case "pop reports priority and bytes" `Quick
      test_pop_reports_priority_and_bytes;
    Alcotest.test_case "job-count limit" `Quick test_job_count_limit;
    Alcotest.test_case "byte limit" `Quick test_byte_limit;
    Alcotest.test_case "lane depth" `Quick test_depth;
    Alcotest.test_case "invalid args" `Quick test_invalid;
  ]
