The experiment registry lists every table and figure:

  $ xpose-experiments list
  fig1     C2R/R2C illustration, m=3 n=8 (Figure 1)
  fig2     C2R phases on a 4x8 matrix (Figure 2)
  fig3     CPU throughput histograms (Figure 3)
  table1   CPU median throughputs (Table 1)
  fig4     C2R performance landscape (Figure 4)
  fig5     R2C performance landscape (Figure 5)
  fig6     GPU throughput histograms (Figure 6)
  table2   GPU median throughputs (Table 2)
  fig7     AoS->SoA conversion throughput (Figure 7)
  fig8     Unit-stride AoS access bandwidth (Figure 8)
  fig9     Random AoS access bandwidth (Figure 9)
  permute  Rank-N permutation planner, predicted vs measured
  cycles   Cycle-length imbalance motivating the decomposition (§1)

Figure 1 is exact:

  $ xpose-experiments run fig1 | head -6
  ==== fig1: C2R and R2C transpositions, m = 3, n = 8 (Figure 1) ====
  left (row-major iota, m=3 n=8):
   0  1  2  3  4  5  6  7
   8  9 10 11 12 13 14 15
  16 17 18 19 20 21 22 23
  Rows to Columns ->

Unknown ids are reported with the available list:

  $ xpose-experiments run nope 2>&1 | head -1
  experiments: unknown experiment "nope"; try: fig1, fig2, fig3, table1, fig4, fig5, fig6, table2, fig7, fig8, fig9, permute, cycles

Figures are written as SVG with --out:

  $ xpose-experiments run fig5 -o figs | grep wrote
  wrote figs/fig5.svg
  $ head -c 38 figs/fig5.svg
  <?xml version="1.0" encoding="UTF-8"?>
