The report subcommand joins measured passes against the Theorem-6 model;
--no-times hides the wall-clock columns so the output is stable:

  $ xpose report -m 4 -n 6 --no-times
  4 x 6 float64 r2c, 1 worker, best of 1:
  #    pass             shape              pred.touch  share%   scratch    meas.ms  rel.err  chunks   imbal
  --------------------------------------------------------------------------------------------------------
  1    col_unshuffle    6x4                        48    40.0         6          -        -       1       -
  2    row_unshuffle    6x4                        48    40.0         6          -        -       1       -
  3    rotate_post      6x4                        24    20.0         6          -        -       1       -
  total: 3 passes, 120 predicted element touches

The touch total matches `xpose plan` for the same shape:

  $ xpose plan -m 4 -n 6 | grep 'element touches'
  element touches: 120 (bound 144 = 6mn)

Forcing the other orientation prices the C2R pass sequence instead, with
its pre-rotation:

  $ xpose report -m 4 -n 6 -a c2r --workers 2 --no-times
  4 x 6 float64 c2r, 2 workers, best of 1:
  #    pass             shape              pred.touch  share%   scratch    meas.ms  rel.err  chunks   imbal
  --------------------------------------------------------------------------------------------------------
  1    rotate_pre       4x6                        24    20.0         6          -        -       2       -
  2    row_shuffle      4x6                        48    40.0         6          -        -       2       -
  3    col_shuffle      4x6                        48    40.0         6          -        -       2       -
  total: 3 passes, 120 predicted element touches

A coprime shape needs no rotation passes:

  $ xpose report -m 7 -n 5 -a c2r --no-times
  7 x 5 float64 c2r, 1 worker, best of 1:
  #    pass             shape              pred.touch  share%   scratch    meas.ms  rel.err  chunks   imbal
  --------------------------------------------------------------------------------------------------------
  1    row_shuffle      7x5                        70    50.0         7          -        -       1       -
  2    col_shuffle      7x5                        70    50.0         7          -        -       1       -
  total: 2 passes, 140 predicted element touches

The fused engine collapses the column rotation and row permutation into
one panel-resident pass, priced at one matrix sweep under the §4.6
residency model (2mn = 48 here) instead of two:

  $ xpose report -m 4 -n 6 -a c2r --engine fused --no-times
  4 x 6 float64 c2r, 1 worker, best of 1:
  #    pass             shape              pred.touch  share%   scratch    meas.ms  rel.err  chunks   imbal
  --------------------------------------------------------------------------------------------------------
  1    rotate_pre       4x6                        48    33.3         6          -        -       1       -
  2    row_shuffle      4x6                        48    33.3         6          -        -       1       -
  3    fused_col        4x6                        48    33.3         6          -        -       1       -
  total: 3 passes, 144 predicted element touches

--metrics dumps the registry after any subcommand; the pass counters
reflect the run that just happened:

  $ xpose report -m 4 -n 6 -a c2r --no-times --metrics
  4 x 6 float64 c2r, 1 worker, best of 1:
  #    pass             shape              pred.touch  share%   scratch    meas.ms  rel.err  chunks   imbal
  --------------------------------------------------------------------------------------------------------
  1    rotate_pre       4x6                        24    20.0         6          -        -       1       -
  2    row_shuffle      4x6                        48    40.0         6          -        -       1       -
  3    col_shuffle      4x6                        48    40.0         6          -        -       1       -
  total: 3 passes, 120 predicted element touches
  counter   pass.col_shuffle                         1
  counter   pass.col_shuffle.touches                 48
  counter   pass.rotate_pre                          1
  counter   pass.rotate_pre.touches                  24
  counter   pass.row_shuffle                         1
  counter   pass.row_shuffle.touches                 48
  counter   pool.barriers_total                      3
  counter   pool.chunks_total                        3
  counter   xpose.passes_total                       3
  counter   xpose.pred_touches_total                 120

--trace writes Chrome trace_event JSON; the file loads as JSON and holds
one complete event per pass plus the pool chunks:

  $ xpose report -m 4 -n 6 -a c2r --no-times --trace trace.json >/dev/null
  trace written to trace.json (6 events)
  $ grep -c '"ph":"X"' trace.json
  6
  $ grep -o '"name":"[a-z_]*","cat":"pass"' trace.json
  "name":"rotate_pre","cat":"pass"
  "name":"row_shuffle","cat":"pass"
  "name":"col_shuffle","cat":"pass"

Tracing composes with every subcommand, e.g. a rank-N permutation records
plan-level passes:

  $ xpose permute --dims 4,6,8 --perm 2,0,1 --trace perm.json >/dev/null
  trace written to perm.json (4 events)
  $ grep -c '"cat":"plan"' perm.json
  1
