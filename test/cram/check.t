The full check grid proves every engine's plan and every parallel
split, exiting zero:

  $ xpose check > report.txt; echo "exit $?"
  exit 0
  $ tail -1 report.txt
  checked 923: 0 violations, 0 seeded detections
  $ grep -c proved report.txt
  923

One plan line per engine and shape, one race line per engine, shape and
lane count:

  $ grep -c '^plan' report.txt
  80
  $ grep '^plan' report.txt | head -5
  plan   proved    functor 2x2                        [col_unshuffle; row_unshuffle; rotate_post] proved (4 indices, exhaustive)
  plan   proved    kernels 2x2                        [col_unshuffle; row_unshuffle; rotate_post] proved (4 indices, exhaustive)
  plan   proved    decomposed 2x2                     [row_unpermute; col_unrotate; row_unshuffle; rotate_post] proved (4 indices, exhaustive)
  plan   proved    cache 2x2                          [row_unpermute; col_unrotate; row_unshuffle; rotate_post] proved (4 indices, exhaustive)
  plan   proved    fused 2x2                          [fused_col; row_unshuffle; rotate_post] proved (4 indices, exhaustive)

A seeded off-by-one chunk split must be detected, with a non-zero exit
and the first conflicting pair named:

  $ xpose check --seed-race > seeded.txt 2> err.txt; echo "exit $?"
  exit 124
  $ grep -c detected seeded.txt
  747
  $ grep violated seeded.txt
  [1]
  $ grep '^race' seeded.txt | head -1
  race   detected  functor 2x2 @2 lanes               write/write conflict in pass col_unshuffle between chunks 0 and 1 at index 1
  $ cat err.txt
  xpose: 747 seeded defect(s) detected

A seeded out-of-bounds access in the checked kernels must likewise be
detected:

  $ xpose check --seed-oob > oob.txt 2> err.txt; echo "exit $?"
  exit 124
  $ grep 'seeded out-of-bounds' oob.txt
  shadow detected  seeded out-of-bounds               Kernels_f64.Checked: rotate read index 34 out of bounds [0, 34)

Shadow mode reruns the engines with every access checked:

  $ xpose check --shadow > shadow.txt; echo "exit $?"
  exit 0
  $ grep -c '^shadow' shadow.txt
  52

JSON output carries the same verdicts:

  $ xpose check --json | head -c 66; echo
  {"checked":923,"violations":0,"detections":0,"entries":[{"check":"
