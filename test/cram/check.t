The full check grid proves every engine's plan and every parallel
split, exiting zero:

  $ xpose check > report.txt; echo "exit $?"
  exit 0
  $ tail -1 report.txt
  checked 1859: 0 violations, 0 seeded detections
  $ grep -c proved report.txt
  1859

One plan line per engine and shape, one race line per engine, shape and
lane count:

  $ grep -c '^plan' report.txt
  80
  $ grep '^plan' report.txt | head -5
  plan   proved    functor 2x2                        [col_unshuffle; row_unshuffle; rotate_post] proved (4 indices, exhaustive)
  plan   proved    kernels 2x2                        [col_unshuffle; row_unshuffle; rotate_post] proved (4 indices, exhaustive)
  plan   proved    decomposed 2x2                     [row_unpermute; col_unrotate; row_unshuffle; rotate_post] proved (4 indices, exhaustive)
  plan   proved    cache 2x2                          [row_unpermute; col_unrotate; row_unshuffle; rotate_post] proved (4 indices, exhaustive)
  plan   proved    fused 2x2                          [fused_col; row_unshuffle; rotate_post] proved (4 indices, exhaustive)

A seeded off-by-one chunk split must be detected, with a non-zero exit
and the first conflicting pair named:

  $ xpose check --seed-race > seeded.txt 2> err.txt; echo "exit $?"
  exit 124
  $ grep -c detected seeded.txt
  1587
  $ grep violated seeded.txt
  [1]
  $ grep '^race' seeded.txt | head -1
  race   detected  functor 2x2 @2 lanes               write/write conflict in pass col_unshuffle between chunks 0 and 1 at index 1
  $ cat err.txt
  xpose: 1587 seeded defect(s) detected

A seeded out-of-bounds access in the checked kernels must likewise be
detected:

  $ xpose check --seed-oob > oob.txt 2> err.txt; echo "exit $?"
  exit 124
  $ grep 'seeded out-of-bounds' oob.txt
  shadow detected  seeded out-of-bounds               Kernels_f64.Checked: rotate read index 34 out of bounds [0, 34)

Shadow mode reruns the engines with every access checked:

  $ xpose check --shadow > shadow.txt; echo "exit $?"
  exit 0
  $ grep -c '^shadow' shadow.txt
  130

JSON output carries the same verdicts:

  $ xpose check --json | head -c 66; echo
  {"checked":1859,"violations":0,"detections":0,"entries":[{"check":

The parametric certificate families are reachable through --only
without paying for the full bounds grid: the alias certificates prove
every split and barrier footprint for all shapes at once.

  $ xpose check --only alias > alias.txt; echo "exit $?"
  exit 0
  $ cat alias.txt
  alias  proved    split/pool                         42 obligations proved for all shapes: Pool.chunk_bounds partitions [lo, hi) exactly for every range and lane count
  alias  proved    split/window                       8 obligations proved for all shapes: Window.split tiles [0, total) exactly for every total and window size
  alias  proved    barrier/row-chunks                 14 obligations proved for all shapes: per-lane row intervals of the flat matrix are disjoint and within the buffer for every shape and lane count (row barriers of every engine and the ooc per-window shuffles)
  alias  proved    barrier/column-chunks              14 obligations proved for all shapes: per-lane column ranges are disjoint sub-ranges of every row (strided footprints never meet)
  alias  proved    barrier/panel-groups               26 obligations proved for all shapes: width-aligned panel-group column ranges are disjoint and clipped to the matrix for every width and lane count
  alias  proved    barrier/batch-slices               14 obligations proved for all shapes: per-lane whole-matrix slices of a batch are disjoint and within the buffer for every matrix size, batch size and lane count (matrix-parallel batch schedules and permute batch/slice axes)
  alias  proved    barrier/block-slots                20 obligations proved for all shapes: strided block-slot footprints are disjoint within and across repetitions for every block width, repetition count and lane count
  alias  proved    barrier/ooc-windows                4 obligations proved for all shapes: row-window and stripe file footprints are disjoint and within the file for every shape and window budget (column panels reduce to the window split on columns)
  alias  proved    barrier/scratch-slots              2 obligations proved for all shapes: per-lane workspace slices are pairwise disjoint and within the pool for every slot size and lane count
  alias  proved    regions/workspace-matrix           198 structural checks: regions are distinct allocations and every access names a declared one (cross-region disjointness by construction, in-region bounds by the Bounds grid)
  checked 10: 0 violations, 0 seeded detections

With --seed-race the alias prover must refute the seeded splits with a
concrete overlap witness:

  $ xpose check --only alias --seed-race > alias-seeded.txt 2> err.txt; echo "exit $?"
  exit 124
  $ grep '^alias  detected' alias-seeded.txt
  alias  detected  seeded/off-by-one-split            refuted: lo=0 hi=2 lanes=2: chunk 0 [0,2) overlaps chunk 1 [1,2) at index 1
  alias  detected  seeded/overlapping-windows         refuted: total=2 per=1: window 0 [0,2) overlaps window 1 [1,2) at index 1
  $ cat err.txt
  xpose: 2 seeded defect(s) detected

The static out-of-bounds negative runs just the seeded bounds
certificate (the full --prove-bounds grid belongs to CI), refuting it
with the smallest witness shape:

  $ xpose check --only bounds --seed-oob-static > oob-static.txt 2> err.txt; echo "exit $?"
  exit 124
  $ cat oob-static.txt
  bounds detected  seeded/rotate-oob                  refuted: m=2 n=2 hi=2 lo=0: read matrix[5] outside [0, 4) in seeded.rotate_oob
  checked 1: 0 violations, 1 seeded detection
  $ cat err.txt
  xpose: 1 seeded defect(s) detected

--only validates its analysis names ("perm" is accepted for the plan
family):

  $ xpose check --only plans > /dev/null 2> err.txt; echo "exit $?"
  exit 124
  $ cat err.txt
  xpose: unknown analysis "plans" (expected perm, race, shadow, bounds or alias)
  $ xpose check --only perm > perm.txt; echo "exit $?"
  exit 0
  $ grep -c '^plan' perm.txt
  80
  $ tail -1 perm.txt
  checked 80: 0 violations, 0 seeded detections
