Transpose a 2x3 matrix given on the command line:

  $ xpose transpose -m 2 -n 3 1 2 3 4 5 6
  1 4
  2 5
  3 6

Explicit algorithm choices agree:

  $ xpose transpose -m 2 -n 3 -a c2r 1 2 3 4 5 6
  1 4
  2 5
  3 6
  $ xpose transpose -m 2 -n 3 -a r2c 1 2 3 4 5 6
  1 4
  2 5
  3 6
  $ xpose transpose -m 2 -n 3 -a cycle 1 2 3 4 5 6
  1 4
  2 5
  3 6

Wrong element count is rejected:

  $ xpose transpose -m 2 -n 3 1 2 3
  xpose: expected 6 elements for a 2 x 3 matrix, got 3
  [124]

The demo prints the paper's phases:

  $ xpose demo -m 4 -n 8 | head -6
  initial:
   0  1  2  3  4  5  6  7
   8  9 10 11 12 13 14 15
  16 17 18 19 20 21 22 23
  24 25 26 27 28 29 30 31
  column rotate:

A timed transpose verifies its own result:

  $ xpose bench -m 200 -n 150 -a c2r | tail -1
  verified: result is the transpose

The differential fuzzer agrees across all implementations:

  $ xpose-fuzz -i 10 --max-dim 40
  fuzz: 10 iterations x 12 implementations, all agree

Quarter-turn rotation in place:

  $ xpose rotate -m 2 -n 3 1 2 3 4 5 6
  4 1
  5 2
  6 3
  $ xpose rotate -m 2 -n 3 -d ccw 1 2 3 4 5 6
  3 6
  2 5
  1 4
  $ xpose rotate -m 2 -n 3 -d half 1 2 3 4 5 6
  6 5 4
  3 2 1

The plan inspector reports the decomposition structure:

  $ xpose plan -m 4 -n 6
  plan 4x6 (c=2 a=2 b=3 a^-1=2 b^-1=1)
  coprime: false (pre-rotation required)
  scratch elements: 6
  element touches: 120 (bound 144 = 6mn)
  monolithic permutation: 4 cycles, longest 11 of 24 elements (45.8%)
  decomposition's largest independent unit: 6 elements
