Transpose a 2x3 matrix given on the command line:

  $ xpose transpose -m 2 -n 3 1 2 3 4 5 6
  1 4
  2 5
  3 6

Explicit algorithm choices agree:

  $ xpose transpose -m 2 -n 3 -a c2r 1 2 3 4 5 6
  1 4
  2 5
  3 6
  $ xpose transpose -m 2 -n 3 -a r2c 1 2 3 4 5 6
  1 4
  2 5
  3 6
  $ xpose transpose -m 2 -n 3 -a cycle 1 2 3 4 5 6
  1 4
  2 5
  3 6

Wrong element count is rejected:

  $ xpose transpose -m 2 -n 3 1 2 3
  xpose: expected 6 elements for a 2 x 3 matrix, got 3
  [124]

The demo prints the paper's phases:

  $ xpose demo -m 4 -n 8 | head -6
  initial:
   0  1  2  3  4  5  6  7
   8  9 10 11 12 13 14 15
  16 17 18 19 20 21 22 23
  24 25 26 27 28 29 30 31
  column rotate:

A timed transpose verifies its own result:

  $ xpose bench -m 200 -n 150 -a c2r | tail -1
  verified: result is the transpose

Every engine verifies, including the pass-fused panel engine and the
batched path:

  $ xpose bench -m 96 -n 72 --engine kernels | tail -1
  verified: result is the transpose
  $ xpose bench -m 96 -n 72 --engine decomposed | tail -1
  verified: result is the transpose
  $ xpose bench -m 96 -n 72 --engine cache | tail -1
  verified: result is the transpose
  $ xpose bench -m 96 -n 72 --engine fused | tail -1
  verified: result is the transpose
  $ xpose bench -m 64 -n 48 --engine fused --batch 5 --workers 2 | tail -1
  verified: all 5 results are transposes

The differential fuzzer agrees across all implementations:

  $ xpose-fuzz -i 10 --max-dim 40
  fuzz: 10 iterations x 12 implementations, all agree
  fuzz: 10 rank-N permutations x 2 executors, all match the oracle

Quarter-turn rotation in place:

  $ xpose rotate -m 2 -n 3 1 2 3 4 5 6
  4 1
  5 2
  6 3
  $ xpose rotate -m 2 -n 3 -d ccw 1 2 3 4 5 6
  3 6
  2 5
  1 4
  $ xpose rotate -m 2 -n 3 -d half 1 2 3 4 5 6
  6 5 4
  3 2 1

The rank-N permutation planner prints the chosen decomposition, its
predicted cost, and verifies the execution against the index oracle.
A cyclic shift of three axes fuses to a single flat transpose:

  $ xpose permute --dims 2,3,4 --perm 1,2,0
  permute 2x3x4 by (1,2,0) -> 3x4x2
  normalized: 2x12 by (1,0)
  pass 1: flat transpose 2x12
  predicted: 1 pass, 120 element touches, 12 scratch elements, score 960.0
  verified: 24 elements match the permuted_index oracle

NCHW -> NHWC keeps the H and W axes fused and needs one batched pass:

  $ xpose permute --dims 32,3,8,8 --perm 0,2,3,1
  permute 32x3x8x8 by (0,2,3,1) -> 32x8x8x3
  normalized: 32x3x64 by (0,2,1)
  pass 1: 32 x batched transpose 3x64
  predicted: 1 pass, 24576 element touches, 64 scratch elements, score 196608.0
  verified: 6144 elements match the permuted_index oracle

A full axis reversal needs two passes; --all shows what lost:

  $ xpose permute --dims 2,3,4 --perm 2,1,0 --all
  permute 2x3x4 by (2,1,0) -> 4x3x2
  normalized: 2x3x4 by (2,1,0)
  pass 1: block transpose 2x3 (block 4)
  pass 2: flat transpose 6x4
  predicted: 2 passes, 216 element touches, 12 scratch elements, score 1224.0
  rejected: 2 passes, score 1392.0
  rejected: 2 passes, score 1728.0
  rejected: 2 passes, score 1728.0
  verified: 24 elements match the permuted_index oracle

The identity costs nothing after fusion:

  $ xpose permute --dims 4,5 --perm 0,1
  permute 4x5 by (0,1) -> 4x5
  normalized: 20 by (0)
  identity after axis fusion: nothing to move
  predicted: 0 passes, 0 element touches, 0 scratch elements, score 0.0
  verified: 20 elements match the permuted_index oracle

Invalid permutations are rejected:

  $ xpose permute --dims 2,3 --perm 0,0
  xpose: Shape.validate: perm is not a permutation of the axes
  [124]

The plan inspector reports the decomposition structure:

  $ xpose plan -m 4 -n 6
  plan 4x6 (c=2 a=2 b=3 a^-1=2 b^-1=1)
  coprime: false (pre-rotation required)
  scratch elements: 6
  element touches: 120 (bound 144 = 6mn)
  monolithic permutation: 4 cycles, longest 11 of 24 elements (45.8%)
  decomposition's largest independent unit: 6 elements
