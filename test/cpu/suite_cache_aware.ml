open Xpose_core
open Xpose_cpu
module S = Storage.Int_elt
module A = Instances.I
module C = Cache_aware.Make (Storage.Int_elt)

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

let check_rotate ~width m n amount =
  let p = Plan.make ~m ~n in
  let expected =
    let buf = iota_buf (m * n) in
    let tmp = S.create (Plan.scratch_elements p) in
    A.Phases.rotate_columns p buf ~tmp ~amount ~lo:0 ~hi:n;
    buf_to_list buf
  in
  let buf = iota_buf (m * n) in
  C.rotate_columns ~width p buf ~amount;
  Alcotest.(check (list int))
    (Printf.sprintf "rotate %dx%d w=%d" m n width)
    expected (buf_to_list buf)

let test_rotate_families () =
  (* The two amount families the algorithm uses (§4.6), plus inverses. *)
  List.iter
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      List.iter
        (fun width ->
          check_rotate ~width m n (Plan.rotate_amount p);
          check_rotate ~width m n (fun j -> j);
          check_rotate ~width m n (fun j -> -j);
          check_rotate ~width m n (fun j -> -Plan.rotate_amount p j))
        [ 1; 3; 16; 64 ])
    [ (12, 18); (7, 7); (30, 8); (8, 30); (64, 48) ]

let test_rotate_arbitrary_amount_falls_back () =
  (* Residuals not bounded by the group width: the implementation must
     still be exact via its per-column fallback. *)
  check_rotate ~width:8 20 24 (fun j -> (j * 7) + 3);
  check_rotate ~width:8 20 24 (fun j -> j * j)

let test_rotate_zero () =
  check_rotate ~width:16 9 14 (fun _ -> 0)

let check_permute ~width m n index =
  let p = Plan.make ~m ~n in
  let expected =
    let buf = iota_buf (m * n) in
    let tmp = S.create (Plan.scratch_elements p) in
    A.Phases.permute_rows p buf ~tmp ~index ~lo:0 ~hi:n;
    buf_to_list buf
  in
  let buf = iota_buf (m * n) in
  C.permute_rows ~width p buf ~index;
  Alcotest.(check (list int))
    (Printf.sprintf "permute %dx%d w=%d" m n width)
    expected (buf_to_list buf)

let test_permute_q_family () =
  List.iter
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      List.iter
        (fun width ->
          check_permute ~width m n (Plan.q p);
          check_permute ~width m n (Plan.q_inv p);
          check_permute ~width m n Fun.id;
          check_permute ~width m n (fun i -> m - 1 - i))
        [ 1; 5; 16 ])
    [ (12, 18); (16, 10); (31, 9) ]

let test_permute_rejects_non_permutation () =
  let p = Plan.make ~m:6 ~n:4 in
  let buf = iota_buf 24 in
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Cache_aware.permute_rows: index is not a permutation")
    (fun () -> C.permute_rows p buf ~index:(fun i -> if i = 0 then 1 else i));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Cache_aware.permute_rows: index out of range")
    (fun () -> C.permute_rows p buf ~index:(fun i -> i + 1))

let test_c2r_r2c () =
  List.iter
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let expected =
        let buf = iota_buf (m * n) in
        let tmp = S.create (Plan.scratch_elements p) in
        A.c2r p buf ~tmp;
        buf_to_list buf
      in
      List.iter
        (fun width ->
          let buf = iota_buf (m * n) in
          let tmp = S.create (Plan.scratch_elements p) in
          C.c2r ~width p buf ~tmp;
          Alcotest.(check (list int))
            (Printf.sprintf "cache-aware c2r %dx%d w=%d" m n width)
            expected (buf_to_list buf);
          C.r2c ~width p buf ~tmp;
          Alcotest.(check (list int)) "cache-aware r2c inverts"
            (List.init (m * n) Fun.id) (buf_to_list buf))
        [ 4; 16; 32 ])
    [ (3, 8); (4, 8); (48, 36); (36, 48); (55, 50); (1, 9); (9, 1) ]

let prop_cache_aware_equals_plain =
  QCheck2.Test.make ~name:"cache-aware c2r = plain c2r" ~count:80
    QCheck2.Gen.(
      triple (int_range 1 64) (int_range 1 64) (int_range 1 24))
    (fun (m, n, width) ->
      let p = Plan.make ~m ~n in
      let expected =
        let buf = iota_buf (m * n) in
        let tmp = S.create (Plan.scratch_elements p) in
        A.c2r p buf ~tmp;
        buf_to_list buf
      in
      let buf = iota_buf (m * n) in
      let tmp = S.create (Plan.scratch_elements p) in
      C.c2r ~width p buf ~tmp;
      buf_to_list buf = expected)

let tests =
  [
    Alcotest.test_case "rotate amount families" `Quick test_rotate_families;
    Alcotest.test_case "rotate fallback for wild amounts" `Quick
      test_rotate_arbitrary_amount_falls_back;
    Alcotest.test_case "rotate by zero" `Quick test_rotate_zero;
    Alcotest.test_case "permute q family" `Quick test_permute_q_family;
    Alcotest.test_case "permute rejects non-permutations" `Quick
      test_permute_rejects_non_permutation;
    Alcotest.test_case "cache-aware c2r/r2c" `Quick test_c2r_r2c;
    QCheck_alcotest.to_alcotest prop_cache_aware_equals_plain;
  ]
