open Xpose_core
open Xpose_cpu
module S = Storage.Int_elt
module Seq_algo = Instances.I
module Par = Par_transpose.Make (Storage.Int_elt)

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

let check_against_sequential pool m n =
  let p = Plan.make ~m ~n in
  let expected =
    let buf = iota_buf (m * n) in
    let tmp = S.create (Plan.scratch_elements p) in
    Seq_algo.c2r p buf ~tmp;
    buf_to_list buf
  in
  let buf = iota_buf (m * n) in
  Par.c2r pool p buf;
  Alcotest.(check (list int)) (Printf.sprintf "par c2r %dx%d" m n) expected
    (buf_to_list buf);
  Par.r2c pool p buf;
  Alcotest.(check (list int))
    (Printf.sprintf "par r2c %dx%d" m n)
    (List.init (m * n) Fun.id) (buf_to_list buf)

let test_matches_sequential () =
  Pool.with_pool ~workers:4 (fun pool ->
      List.iter
        (fun (m, n) -> check_against_sequential pool m n)
        [ (1, 1); (1, 17); (17, 1); (3, 8); (4, 8); (31, 31); (60, 45); (128, 96); (97, 101) ])

let test_all_variants () =
  Pool.with_pool ~workers:3 (fun pool ->
      let m = 24 and n = 36 in
      let p = Plan.make ~m ~n in
      let reference =
        let buf = iota_buf (m * n) in
        let tmp = S.create (Plan.scratch_elements p) in
        Seq_algo.c2r p buf ~tmp;
        buf_to_list buf
      in
      List.iter
        (fun variant ->
          let buf = iota_buf (m * n) in
          Par.c2r ~variant pool p buf;
          Alcotest.(check (list int)) "variant" reference (buf_to_list buf))
        [ Algo.C2r_scatter; Algo.C2r_gather; Algo.C2r_decomposed ];
      List.iter
        (fun variant ->
          let buf = iota_buf (m * n) in
          Par.c2r pool p buf;
          Par.r2c ~variant pool p buf;
          Alcotest.(check (list int)) "r2c variant"
            (List.init (m * n) Fun.id) (buf_to_list buf))
        [ Algo.R2c_fused; Algo.R2c_decomposed ])

let test_transpose_dispatch () =
  Pool.with_pool ~workers:2 (fun pool ->
      List.iter
        (fun (m, n, order) ->
          let buf = iota_buf (m * n) in
          let original = Seq_algo.copy buf in
          Par.transpose ~order pool ~m ~n buf;
          Alcotest.(check bool)
            (Printf.sprintf "dispatch %dx%d" m n)
            true
            (Seq_algo.is_transpose_of ~order ~m ~n ~original buf))
        [
          (40, 15, Layout.Row_major);
          (15, 40, Layout.Row_major);
          (40, 15, Layout.Col_major);
          (22, 22, Layout.Row_major);
        ])

let test_bad_buffer () =
  Pool.with_pool ~workers:2 (fun pool ->
      let p = Plan.make ~m:4 ~n:5 in
      let buf = iota_buf 19 in
      Alcotest.check_raises "size mismatch"
        (Invalid_argument "Par_transpose: buffer size does not match plan")
        (fun () -> Par.c2r pool p buf))

let test_sequential_pool_matches () =
  (* workers = 1 must behave exactly like the library algorithm. *)
  List.iter
    (fun (m, n) -> check_against_sequential Pool.sequential m n)
    [ (9, 12); (50, 20) ]

let prop_par_equals_seq =
  QCheck2.Test.make ~name:"parallel = sequential for random dims/workers"
    ~count:60
    QCheck2.Gen.(triple (int_range 1 60) (int_range 1 60) (int_range 1 5))
    (fun (m, n, workers) ->
      let p = Plan.make ~m ~n in
      let expected =
        let buf = iota_buf (m * n) in
        let tmp = S.create (Plan.scratch_elements p) in
        Seq_algo.c2r p buf ~tmp;
        buf_to_list buf
      in
      Pool.with_pool ~workers (fun pool ->
          let buf = iota_buf (m * n) in
          Par.c2r pool p buf;
          buf_to_list buf = expected))

let tests =
  [
    Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
    Alcotest.test_case "all variants" `Quick test_all_variants;
    Alcotest.test_case "dispatch + orders" `Quick test_transpose_dispatch;
    Alcotest.test_case "bad buffer" `Quick test_bad_buffer;
    Alcotest.test_case "sequential pool" `Quick test_sequential_pool_matches;
    QCheck_alcotest.to_alcotest prop_par_equals_seq;
  ]
