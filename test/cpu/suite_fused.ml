(* The pass-fused engines (generic functor and float64 fast path) must be
   behaviourally identical to the element-generic Algo oracle: fusing the
   column rotation and row permutation into one panel visit is a pure
   locality transformation. *)

open Xpose_core
open Xpose_cpu
module S = Storage.Float64
module A = Instances.F64
module FI = Fused.Make (Storage.Int_elt)
module AI = Instances.I

(* XPOSE_CHECKED=1 reruns this suite through the checked-access shadow
   engine: identical semantics, every access bounds-verified. *)
module F =
  (val if Sys.getenv_opt "XPOSE_CHECKED" <> None then
         (module Fused_f64.Checked : Fused_f64.ENGINE)
       else (module Fused_f64 : Fused_f64.ENGINE))

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

(* Coprime, non-coprime, prime, skinny, square, and panel-boundary shapes
   (n not a multiple of the default width 16). *)
let shapes =
  [
    (1, 1);
    (3, 8);
    (37, 18);
    (48, 36);
    (97, 89);
    (1, 9);
    (9, 1);
    (40, 23);
    (23, 40);
    (96, 72);
    (17, 17);
    (64, 48);
  ]

let oracle_c2r m n =
  let p = Plan.make ~m ~n in
  let buf = iota_buf (m * n) in
  let tmp = S.create (Plan.scratch_elements p) in
  A.c2r p buf ~tmp;
  buf_to_list buf

let test_c2r_matches_oracle () =
  List.iter
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let expected = oracle_c2r m n in
      let buf = iota_buf (m * n) in
      F.c2r p buf;
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "fused c2r %dx%d" m n)
        expected (buf_to_list buf);
      F.r2c p buf;
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "fused r2c inverts %dx%d" m n)
        (List.init (m * n) float_of_int)
        (buf_to_list buf))
    shapes

let test_workspace_reuse_across_shapes () =
  (* One workspace driven through growing and shrinking shapes: the
     grow-only scratch must never leak state between calls. *)
  let ws = Workspace.F64.create () in
  List.iter
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let buf = iota_buf (m * n) in
      F.c2r ~ws p buf;
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "shared-ws c2r %dx%d" m n)
        (oracle_c2r m n) (buf_to_list buf))
    (shapes @ List.rev shapes)

let prop_fused_equals_oracle =
  QCheck2.Test.make ~name:"fused f64 c2r = generic c2r" ~count:120
    QCheck2.Gen.(
      quad (int_range 1 80) (int_range 1 80) (int_range 1 24) (int_range 1 80))
    (fun (m, n, width, block_rows) ->
      let p = Plan.make ~m ~n in
      let expected =
        let buf = iota_buf (m * n) in
        let tmp = S.create (Plan.scratch_elements p) in
        A.c2r p buf ~tmp;
        buf_to_list buf
      in
      let buf = iota_buf (m * n) in
      F.c2r ~panel_width:width ~block_rows p buf;
      buf_to_list buf = expected)

let prop_r2c_inverts =
  QCheck2.Test.make ~name:"fused f64 r2c inverts c2r" ~count:120
    QCheck2.Gen.(triple (int_range 1 80) (int_range 1 80) (int_range 1 24))
    (fun (m, n, width) ->
      let p = Plan.make ~m ~n in
      let buf = iota_buf (m * n) in
      F.c2r ~panel_width:width p buf;
      F.r2c ~panel_width:width p buf;
      buf_to_list buf = List.init (m * n) float_of_int)

let test_generic_fused_matches_oracle () =
  (* The functorized twin over int storage, exercising fused visits,
     unfused sweeps, and the full engine. *)
  let module SI = Storage.Int_elt in
  let iota len =
    let buf = SI.create len in
    Storage.fill_iota (module SI) buf;
    buf
  in
  let to_list buf = List.init (SI.length buf) (SI.get buf) in
  List.iter
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let expected =
        let buf = iota (m * n) in
        let tmp = SI.create (Plan.scratch_elements p) in
        AI.c2r p buf ~tmp;
        to_list buf
      in
      let buf = iota (m * n) in
      FI.c2r p buf;
      Alcotest.(check (list int))
        (Printf.sprintf "generic fused c2r %dx%d" m n)
        expected (to_list buf);
      FI.r2c p buf;
      Alcotest.(check (list int))
        "generic fused r2c inverts"
        (List.init (m * n) Fun.id)
        (to_list buf))
    shapes

let test_cols_match_sweeps () =
  (* A fused panel visit over any sub-range equals the two sweeps over
     that range — the fusion claim itself, at the primitive level. *)
  List.iter
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let cycles = Fused_f64.cycles ~m ~index:(Plan.q p) in
      List.iter
        (fun (lo, hi) ->
          let expected =
            let buf = iota_buf (m * n) in
            F.rotate_columns ~lo ~hi p buf ~amount:(fun j -> j);
            F.permute_cols ~lo ~hi p buf ~cycles;
            buf_to_list buf
          in
          let buf = iota_buf (m * n) in
          F.c2r_cols ~lo ~hi p buf ~cycles;
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "c2r_cols %dx%d [%d,%d)" m n lo hi)
            expected (buf_to_list buf))
        [ (0, n); (0, n / 2); (n / 2, n); (3, min n 21) ])
    [ (48, 36); (37, 18); (40, 23) ]

let test_transpose_routes_and_caches () =
  let cache = Plan.Cache.create ~capacity:4 () in
  List.iter
    (fun (m, n) ->
      let buf = iota_buf (m * n) in
      F.transpose ~cache ~m ~n buf;
      let ok = ref true in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          if S.get buf ((j * m) + i) <> float_of_int ((i * n) + j) then
            ok := false
        done
      done;
      Alcotest.(check bool)
        (Printf.sprintf "transpose %dx%d" m n)
        true !ok)
    [ (48, 36); (36, 48); (5, 120); (120, 5) ];
  Alcotest.(check bool) "cache hit on repeat" true
    (let before = Plan.Cache.hits cache in
     let buf = iota_buf (48 * 36) in
     F.transpose ~cache ~m:48 ~n:36 buf;
     Plan.Cache.hits cache > before)

let with_pool workers f =
  let pool = Pool.create ~workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_engines () =
  with_pool 4 (fun pool ->
      List.iter
        (fun (m, n) ->
          let p = Plan.make ~m ~n in
          let expected = oracle_c2r m n in
          let buf = iota_buf (m * n) in
          F.c2r_pool pool p buf;
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "pooled fused c2r %dx%d" m n)
            expected (buf_to_list buf);
          F.r2c_pool pool p buf;
          Alcotest.(check (list (float 0.0)))
            "pooled fused r2c inverts"
            (List.init (m * n) float_of_int)
            (buf_to_list buf))
        shapes)

let check_batch pool ~batch ~m ~n =
  let bufs = Array.init batch (fun _ -> iota_buf (m * n)) in
  F.transpose_batch pool ~m ~n bufs;
  let expected =
    let buf = iota_buf (m * n) in
    F.transpose ~m ~n buf;
    buf_to_list buf
  in
  Array.iteri
    (fun b buf ->
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "batch[%d] %dx%d (batch=%d)" b m n batch)
        expected (buf_to_list buf))
    bufs

let test_transpose_batch () =
  with_pool 4 (fun pool ->
      (* batch >= lanes: matrix-parallel branch *)
      check_batch pool ~batch:9 ~m:48 ~n:36;
      check_batch pool ~batch:4 ~m:37 ~n:18;
      (* batch < lanes: panel-parallel branch *)
      check_batch pool ~batch:2 ~m:96 ~n:72;
      check_batch pool ~batch:1 ~m:23 ~n:40;
      (* degenerate shapes and empty batch *)
      check_batch pool ~batch:3 ~m:1 ~n:17;
      F.transpose_batch pool ~m:4 ~n:4 [||]);
  (* sequential pool exercises the lanes = 1 path *)
  check_batch Pool.sequential ~batch:3 ~m:48 ~n:36

let test_pool_workspace_reuse_across_shapes () =
  (* Per-lane workspaces handed to the pool drivers and reused across
     successive different shapes on the same pool (grow, shrink, grow
     again): a stale-capacity bug — scratch still sized or sliced for a
     previous shape — would corrupt results. *)
  with_pool 3 (fun pool ->
      let workspaces = Array.init 3 (fun _ -> Workspace.F64.create ()) in
      List.iter
        (fun (m, n) ->
          let p = Plan.make ~m ~n in
          let buf = iota_buf (m * n) in
          F.c2r_pool ~workspaces pool p buf;
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "pooled shared-ws c2r %dx%d" m n)
            (oracle_c2r m n) (buf_to_list buf);
          F.r2c_pool ~workspaces pool p buf;
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "pooled shared-ws r2c %dx%d" m n)
            (List.init (m * n) float_of_int)
            (buf_to_list buf))
        (shapes @ List.rev shapes))

let test_batch_workspace_reuse_across_shapes () =
  (* The batched driver reuses one workspace per lane across the matrices
     of a batch; drive the same pool through successive batches of very
     different shapes, alternating the matrix-parallel (batch >= lanes)
     and panel-parallel (batch < lanes) regimes. *)
  with_pool 3 (fun pool ->
      List.iter
        (fun (batch, m, n) -> check_batch pool ~batch ~m ~n)
        [
          (5, 96, 72);
          (5, 3, 8);
          (2, 48, 36);
          (4, 97, 89);
          (1, 9, 1);
          (6, 40, 23);
        ])

let test_batch_validates_before_moving () =
  with_pool 2 (fun pool ->
      let good = iota_buf (6 * 4) in
      let bad = iota_buf 5 in
      Alcotest.check_raises "size mismatch"
        (Invalid_argument
           "Fused_f64.transpose_batch: buffer size does not match shape")
        (fun () -> F.transpose_batch pool ~m:6 ~n:4 [| good; bad |]);
      Alcotest.(check (list (float 0.0)))
        "no element moved" (List.init 24 float_of_int) (buf_to_list good))

let test_width_grid_matches_oracle () =
  (* Every supported panel width is a pure locality knob: results must be
     bit-identical to the oracle on every shape, including widths larger
     than n and widths that do not divide n. *)
  List.iter
    (fun panel_width ->
      List.iter
        (fun (m, n) ->
          let p = Plan.make ~m ~n in
          let expected = oracle_c2r m n in
          let buf = iota_buf (m * n) in
          F.c2r ~panel_width p buf;
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "w%d c2r %dx%d" panel_width m n)
            expected (buf_to_list buf);
          F.r2c ~panel_width p buf;
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "w%d r2c inverts %dx%d" panel_width m n)
            (List.init (m * n) float_of_int)
            (buf_to_list buf);
          F.transpose ~panel_width ~m ~n buf;
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "w%d transpose %dx%d" panel_width m n)
            expected (buf_to_list buf))
        shapes)
    Tune_params.supported_widths

let test_batch_split_policies_match_oracle () =
  (* Each explicit split policy must produce the same result as the Auto
     heuristic in both regimes (batch >= lanes and batch < lanes). *)
  let policies =
    [
      Tune_params.Auto;
      Tune_params.Matrix_parallel;
      Tune_params.Panel_parallel;
      Tune_params.Hybrid 2;
    ]
  in
  with_pool 3 (fun pool ->
      List.iter
        (fun split ->
          List.iter
            (fun panel_width ->
              List.iter
                (fun (batch, m, n) ->
                  let bufs =
                    Array.init batch (fun _ -> iota_buf (m * n))
                  in
                  F.transpose_batch ~split ~panel_width pool ~m ~n bufs;
                  let expected =
                    let buf = iota_buf (m * n) in
                    F.transpose ~m ~n buf;
                    buf_to_list buf
                  in
                  Array.iteri
                    (fun b buf ->
                      Alcotest.(check (list (float 0.0)))
                        (Printf.sprintf "%s/w%d batch[%d] %dx%d"
                           (Tune_params.split_to_string split)
                           panel_width b m n)
                        expected (buf_to_list buf))
                    bufs)
                [ (5, 48, 36); (2, 40, 23) ])
            [ 8; 32 ])
        policies)

let test_tier_grid_matches_oracle () =
  (* The kernel tier is a pure inner-loop knob: every tier x width pair
     must be bit-identical to the oracle on every shape, including
     shapes smaller than one block (m < bk forces the scalar tail),
     degenerate m=1/n=1, and widths that do not divide n. *)
  List.iter
    (fun tier ->
      List.iter
        (fun panel_width ->
          List.iter
            (fun (m, n) ->
              let p = Plan.make ~m ~n in
              let expected = oracle_c2r m n in
              let buf = iota_buf (m * n) in
              F.c2r ~panel_width ~tier p buf;
              Alcotest.(check (list (float 0.0)))
                (Printf.sprintf "%s w%d c2r %dx%d"
                   (Tune_params.tier_to_string tier)
                   panel_width m n)
                expected (buf_to_list buf);
              F.r2c ~panel_width ~tier p buf;
              Alcotest.(check (list (float 0.0)))
                (Printf.sprintf "%s w%d r2c inverts %dx%d"
                   (Tune_params.tier_to_string tier)
                   panel_width m n)
                (List.init (m * n) float_of_int)
                (buf_to_list buf);
              F.transpose ~panel_width ~tier ~m ~n buf;
              Alcotest.(check (list (float 0.0)))
                (Printf.sprintf "%s w%d transpose %dx%d"
                   (Tune_params.tier_to_string tier)
                   panel_width m n)
                expected (buf_to_list buf))
            shapes)
        [ 8; 16; 24 ])
    Tune_params.supported_tiers

let test_tier_pool_and_batch_match_oracle () =
  (* Tiers compose with the parallel drivers: the pooled engine and the
     coalescing batch path produce oracle results at every tier. *)
  with_pool 3 (fun pool ->
      List.iter
        (fun tier ->
          List.iter
            (fun (m, n) ->
              let expected = oracle_c2r m n in
              let buf = iota_buf (m * n) in
              F.transpose_pool ~tier pool ~m ~n buf;
              Alcotest.(check (list (float 0.0)))
                (Printf.sprintf "%s pool %dx%d"
                   (Tune_params.tier_to_string tier)
                   m n)
                expected (buf_to_list buf);
              let bufs = Array.init 5 (fun _ -> iota_buf (m * n)) in
              F.transpose_batch ~tier pool ~m ~n bufs;
              Array.iteri
                (fun b buf ->
                  Alcotest.(check (list (float 0.0)))
                    (Printf.sprintf "%s batch[%d] %dx%d"
                       (Tune_params.tier_to_string tier)
                       b m n)
                    expected (buf_to_list buf))
                bufs)
            [ (97, 89); (48, 36); (40, 23) ])
        Tune_params.supported_tiers)

let prop_tiers_agree =
  QCheck2.Test.make ~name:"mk tiers = scalar tier" ~count:120
    QCheck2.Gen.(
      quad (int_range 1 80) (int_range 1 80) (int_range 1 24) (int_range 1 40))
    (fun (m, n, width, block_rows) ->
      let p = Plan.make ~m ~n in
      let run tier =
        let buf = iota_buf (m * n) in
        F.c2r ~panel_width:width ~block_rows ~tier p buf;
        buf_to_list buf
      in
      let scalar = run Tune_params.Scalar in
      run Tune_params.Mk8 = scalar && run Tune_params.Mk16 = scalar)

let tests =
  [
    Alcotest.test_case "fused f64 c2r/r2c vs oracle" `Quick
      test_c2r_matches_oracle;
    Alcotest.test_case "workspace reuse across shapes" `Quick
      test_workspace_reuse_across_shapes;
    Alcotest.test_case "generic fused functor vs oracle" `Quick
      test_generic_fused_matches_oracle;
    Alcotest.test_case "fused visit = two sweeps" `Quick test_cols_match_sweeps;
    Alcotest.test_case "transpose routing + plan cache" `Quick
      test_transpose_routes_and_caches;
    Alcotest.test_case "pooled fused engines" `Quick test_pool_engines;
    Alcotest.test_case "transpose_batch" `Quick test_transpose_batch;
    Alcotest.test_case "pool workspace reuse across shapes" `Quick
      test_pool_workspace_reuse_across_shapes;
    Alcotest.test_case "batch workspace reuse across shapes" `Quick
      test_batch_workspace_reuse_across_shapes;
    Alcotest.test_case "batch validates before moving" `Quick
      test_batch_validates_before_moving;
    Alcotest.test_case "panel width grid vs oracle" `Quick
      test_width_grid_matches_oracle;
    Alcotest.test_case "batch split policies vs oracle" `Quick
      test_batch_split_policies_match_oracle;
    Alcotest.test_case "kernel tier grid vs oracle" `Quick
      test_tier_grid_matches_oracle;
    Alcotest.test_case "kernel tiers on pool and batch paths" `Quick
      test_tier_pool_and_batch_match_oracle;
    QCheck_alcotest.to_alcotest prop_fused_equals_oracle;
    QCheck_alcotest.to_alcotest prop_r2c_inverts;
    QCheck_alcotest.to_alcotest prop_tiers_agree;
  ]
