open Xpose_cpu

let test_create_invalid () =
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Pool.create: workers must be >= 1") (fun () ->
      ignore (Pool.create ~workers:0 ()))

let test_sequential () =
  Alcotest.(check int) "one lane" 1 (Pool.workers Pool.sequential);
  let acc = ref [] in
  Pool.parallel_for Pool.sequential ~lo:0 ~hi:5 (fun i -> acc := i :: !acc);
  Alcotest.(check (list int)) "in order" [ 4; 3; 2; 1; 0 ] !acc;
  Alcotest.check_raises "cannot shut down"
    (Invalid_argument "Pool.shutdown: cannot shut down Pool.sequential")
    (fun () -> Pool.shutdown Pool.sequential)

let test_chunks_cover_range () =
  Pool.with_pool ~workers:3 (fun pool ->
      Alcotest.(check int) "workers" 3 (Pool.workers pool);
      let seen = Array.make 100 0 in
      let chunks = ref [] in
      let mu = Mutex.create () in
      Pool.parallel_chunks pool ~lo:0 ~hi:100 (fun ~chunk ~lo ~hi ->
          Mutex.lock mu;
          chunks := (chunk, lo, hi) :: !chunks;
          Mutex.unlock mu;
          for i = lo to hi - 1 do
            seen.(i) <- seen.(i) + 1
          done);
      Array.iteri
        (fun i c -> if c <> 1 then Alcotest.failf "index %d covered %d times" i c)
        seen;
      Alcotest.(check int) "three chunks" 3 (List.length !chunks);
      let ids = List.sort compare (List.map (fun (c, _, _) -> c) !chunks) in
      Alcotest.(check (list int)) "chunk ids" [ 0; 1; 2 ] ids)

let test_empty_and_tiny_ranges () =
  Pool.with_pool ~workers:4 (fun pool ->
      let count = Atomic.make 0 in
      Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> Atomic.incr count);
      Alcotest.(check int) "empty" 0 (Atomic.get count);
      Pool.parallel_for pool ~lo:0 ~hi:1 (fun _ -> Atomic.incr count);
      Alcotest.(check int) "single" 1 (Atomic.get count);
      Pool.parallel_for pool ~lo:0 ~hi:2 (fun _ -> Atomic.incr count);
      Alcotest.(check int) "two" 3 (Atomic.get count))

let test_parallel_sum () =
  Pool.with_pool ~workers:4 (fun pool ->
      let partial = Array.make 4 0 in
      Pool.parallel_chunks pool ~lo:1 ~hi:1001 (fun ~chunk ~lo ~hi ->
          for i = lo to hi - 1 do
            partial.(chunk) <- partial.(chunk) + i
          done);
      Alcotest.(check int) "sum 1..1000" 500500 (Array.fold_left ( + ) 0 partial))

let test_exception_propagates () =
  Pool.with_pool ~workers:2 (fun pool ->
      let raised =
        try
          Pool.parallel_for pool ~lo:0 ~hi:10 (fun i ->
              if i = 7 then failwith "boom");
          false
        with Failure m -> m = "boom"
      in
      Alcotest.(check bool) "exception surfaced" true raised;
      (* pool is still usable afterwards *)
      let count = Atomic.make 0 in
      Pool.parallel_for pool ~lo:0 ~hi:10 (fun _ -> Atomic.incr count);
      Alcotest.(check int) "still works" 10 (Atomic.get count))

let test_exception_deterministic () =
  (* When several chunks fail in one barrier, the exception of the
     lowest-numbered failing chunk must surface — on every run,
     regardless of worker scheduling — and every chunk must still have
     run to completion. *)
  Pool.with_pool ~workers:4 (fun pool ->
      let ran = Array.make 4 false in
      for _ = 1 to 25 do
        Array.fill ran 0 4 false;
        let msg =
          try
            Pool.parallel_chunks pool ~lo:0 ~hi:40 (fun ~chunk ~lo:_ ~hi:_ ->
                ran.(chunk) <- true;
                if chunk >= 1 then failwith (Printf.sprintf "chunk %d" chunk));
            "no exception"
          with Failure m -> m
        in
        Alcotest.(check string) "lowest failing chunk wins" "chunk 1" msg;
        Alcotest.(check bool)
          "all chunks ran despite failures" true
          (Array.for_all Fun.id ran)
      done)

let test_exception_deterministic_sequential () =
  let ran = Array.make 1 false in
  let msg =
    try
      Pool.parallel_chunks Pool.sequential ~lo:0 ~hi:10
        (fun ~chunk ~lo:_ ~hi:_ ->
          ran.(chunk) <- true;
          failwith (Printf.sprintf "chunk %d" chunk));
      "no exception"
    with Failure m -> m
  in
  Alcotest.(check string) "sequential chunk reported" "chunk 0" msg;
  Alcotest.(check bool) "sequential chunk ran" true ran.(0)

let test_chunk_bounds_match_execution () =
  (* [chunk_bounds] is documented as the exact split [parallel_chunks]
     executes — the contract Xpose_check.Footprint relies on. *)
  Pool.with_pool ~workers:3 (fun pool ->
      let observed = Array.make 3 (-1, -1) in
      Pool.parallel_chunks pool ~lo:5 ~hi:47 (fun ~chunk ~lo ~hi ->
          observed.(chunk) <- (lo, hi));
      Array.iteri
        (fun k got ->
          Alcotest.(check (pair int int))
            (Printf.sprintf "chunk %d bounds" k)
            (Pool.chunk_bounds ~lo:5 ~hi:47 ~chunks:3 k)
            got)
        observed)

let test_shutdown_idempotent () =
  let pool = Pool.create ~workers:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Pool: already shut down") (fun () ->
      Pool.parallel_for pool ~lo:0 ~hi:1 ignore)

let test_many_rounds () =
  (* Exercise the barrier repeatedly; a racy pool would hang or drop work. *)
  Pool.with_pool ~workers:3 (fun pool ->
      let total = Atomic.make 0 in
      for _ = 1 to 200 do
        Pool.parallel_for pool ~lo:0 ~hi:30 (fun _ -> Atomic.incr total)
      done;
      Alcotest.(check int) "all iterations" 6000 (Atomic.get total))

let prop_chunks_partition =
  QCheck2.Test.make ~name:"chunks partition any range" ~count:200
    QCheck2.Gen.(triple (int_range 1 8) (int_range 0 50) (int_range 0 200))
    (fun (workers, lo, len) ->
      let hi = lo + len in
      let hits = Array.make (max 1 len) 0 in
      Pool.with_pool ~workers (fun pool ->
          Pool.parallel_chunks pool ~lo ~hi (fun ~chunk:_ ~lo:c_lo ~hi:c_hi ->
              for i = c_lo to c_hi - 1 do
                hits.(i - lo) <- hits.(i - lo) + 1
              done));
      Array.for_all (fun c -> c = 1) (Array.sub hits 0 len))

let tests =
  [
    Alcotest.test_case "invalid create" `Quick test_create_invalid;
    Alcotest.test_case "sequential pool" `Quick test_sequential;
    Alcotest.test_case "chunks cover range" `Quick test_chunks_cover_range;
    Alcotest.test_case "empty and tiny ranges" `Quick test_empty_and_tiny_ranges;
    Alcotest.test_case "parallel sum" `Quick test_parallel_sum;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "exception aggregation deterministic" `Quick
      test_exception_deterministic;
    Alcotest.test_case "exception aggregation sequential" `Quick
      test_exception_deterministic_sequential;
    Alcotest.test_case "chunk_bounds matches execution" `Quick
      test_chunk_bounds_match_execution;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "many rounds" `Quick test_many_rounds;
    QCheck_alcotest.to_alcotest prop_chunks_partition;
  ]
