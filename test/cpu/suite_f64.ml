(* The specialized float64 kernels and their pooled driver must be
   behaviourally identical to the element-generic functor. *)

open Xpose_core
open Xpose_cpu
module S = Storage.Float64
module A = Instances.F64

(* XPOSE_CHECKED=1 reruns this suite through the checked-access shadow
   kernels: identical semantics, every access bounds-verified. *)
module K =
  (val if Sys.getenv_opt "XPOSE_CHECKED" <> None then
         (module Kernels_f64.Checked : Kernels_f64.ENGINE)
       else (module Kernels_f64 : Kernels_f64.ENGINE))

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

let reference variant m n =
  let p = Plan.make ~m ~n in
  let buf = iota_buf (m * n) in
  let tmp = S.create (Plan.scratch_elements p) in
  A.c2r ~variant p buf ~tmp;
  buf_to_list buf

let test_c2r_matches_generic () =
  List.iter
    (fun (m, n) ->
      List.iter
        (fun variant ->
          let p = Plan.make ~m ~n in
          let buf = iota_buf (m * n) in
          let tmp = S.create (Plan.scratch_elements p) in
          K.c2r ~variant p buf ~tmp;
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "kernels c2r %dx%d" m n)
            (reference variant m n) (buf_to_list buf);
          K.r2c p buf ~tmp;
          Alcotest.(check (list (float 0.0)))
            "kernels r2c inverts"
            (List.init (m * n) float_of_int)
            (buf_to_list buf))
        [ Algo.C2r_scatter; Algo.C2r_gather; Algo.C2r_decomposed ])
    [ (1, 1); (3, 8); (4, 8); (37, 18); (64, 48); (1, 20); (20, 1); (97, 89) ]

let test_r2c_variants () =
  let m = 24 and n = 36 in
  let p = Plan.make ~m ~n in
  List.iter
    (fun variant ->
      let buf = iota_buf (m * n) in
      let tmp = S.create (Plan.scratch_elements p) in
      K.c2r p buf ~tmp;
      K.r2c ~variant p buf ~tmp;
      Alcotest.(check (list (float 0.0)))
        "r2c variant"
        (List.init (m * n) float_of_int)
        (buf_to_list buf))
    [ Algo.R2c_fused; Algo.R2c_decomposed ]

let test_transpose_dispatch () =
  List.iter
    (fun (m, n, order) ->
      let buf = iota_buf (m * n) in
      let original = A.copy buf in
      K.transpose ~order ~m ~n buf;
      Alcotest.(check bool)
        (Printf.sprintf "dispatch %dx%d" m n)
        true
        (A.is_transpose_of ~order ~m ~n ~original buf))
    [
      (30, 7, Layout.Row_major);
      (7, 30, Layout.Row_major);
      (30, 7, Layout.Col_major);
      (12, 12, Layout.Row_major);
    ]

let test_errors () =
  let p = Plan.make ~m:4 ~n:6 in
  let buf = iota_buf 23 in
  let tmp = S.create 6 in
  Alcotest.check_raises "size"
    (Invalid_argument "Kernels_f64: buffer size does not match plan")
    (fun () -> K.c2r p buf ~tmp);
  let buf = iota_buf 24 in
  let tiny = S.create 5 in
  Alcotest.check_raises "scratch"
    (Invalid_argument "Kernels_f64: scratch too small") (fun () ->
      K.r2c p buf ~tmp:tiny)

let test_par_f64_matches () =
  Pool.with_pool ~workers:3 (fun pool ->
      List.iter
        (fun (m, n) ->
          let p = Plan.make ~m ~n in
          let expected = reference Algo.C2r_gather m n in
          let buf = iota_buf (m * n) in
          Par_f64.c2r pool p buf;
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "par_f64 c2r %dx%d" m n)
            expected (buf_to_list buf);
          Par_f64.r2c pool p buf;
          Alcotest.(check (list (float 0.0)))
            "par_f64 r2c"
            (List.init (m * n) float_of_int)
            (buf_to_list buf);
          Par_f64.transpose pool ~m ~n buf;
          let back = iota_buf (m * n) in
          Alcotest.(check bool) "par_f64 dispatch" true
            (A.is_transpose_of ~m ~n ~original:back buf))
        [ (3, 8); (40, 25); (25, 40); (61, 61) ])

let prop_kernels_equal_generic =
  QCheck2.Test.make ~name:"Kernels_f64 = Algo functor on random dims"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 70) (int_range 1 70))
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let buf = iota_buf (m * n) in
      let tmp = S.create (Plan.scratch_elements p) in
      K.c2r p buf ~tmp;
      buf_to_list buf = reference Algo.C2r_gather m n)

let tests =
  [
    Alcotest.test_case "c2r matches generic (all variants)" `Quick
      test_c2r_matches_generic;
    Alcotest.test_case "r2c variants" `Quick test_r2c_variants;
    Alcotest.test_case "transpose dispatch" `Quick test_transpose_dispatch;
    Alcotest.test_case "argument validation" `Quick test_errors;
    Alcotest.test_case "par_f64 matches" `Quick test_par_f64_matches;
    QCheck_alcotest.to_alcotest prop_kernels_equal_generic;
  ]
