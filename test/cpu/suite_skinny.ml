open Xpose_core
open Xpose_cpu
module S = Storage.Float64
module Ref = Xpose_simd.Aos.Make (Storage.Float64)

let iota len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let to_list buf = List.init (S.length buf) (S.get buf)

let test_matches_reference () =
  for structs = 1 to 30 do
    List.iter
      (fun fields ->
        let len = structs * fields in
        let a = iota len and b = iota len in
        Ref.aos_to_soa ~structs ~fields a;
        Skinny_f64.aos_to_soa ~structs ~fields b;
        if to_list a <> to_list b then
          Alcotest.failf "aos_to_soa diverges at structs=%d fields=%d" structs
            fields)
      [ 1; 2; 3; 4; 7; 8; 16; 31 ]
  done

let test_roundtrip () =
  List.iter
    (fun (structs, fields) ->
      let buf = iota (structs * fields) in
      Skinny_f64.aos_to_soa ~structs ~fields buf;
      Skinny_f64.soa_to_aos ~structs ~fields buf;
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "roundtrip %dx%d" structs fields)
        (List.init (structs * fields) float_of_int)
        (to_list buf))
    [ (1, 1); (100, 4); (999, 7); (1000, 2); (512, 32); (257, 31); (2048, 24) ]

let test_soa_layout () =
  let structs = 500 and fields = 6 in
  let buf = iota (structs * fields) in
  Skinny_f64.aos_to_soa ~structs ~fields buf;
  for s = 0 to structs - 1 do
    for f = 0 to fields - 1 do
      Alcotest.(check (float 0.0)) "field-major"
        (float_of_int ((s * fields) + f))
        (S.get buf ((f * structs) + s))
    done
  done

let test_errors () =
  let buf = iota 10 in
  Alcotest.check_raises "size" (Invalid_argument "Skinny_f64: buffer size")
    (fun () -> Skinny_f64.aos_to_soa ~structs:3 ~fields:4 buf)

let prop_random_shapes =
  QCheck2.Test.make ~name:"skinny = generic AoS conversion" ~count:120
    QCheck2.Gen.(pair (int_range 1 400) (int_range 1 32))
    (fun (structs, fields) ->
      let len = structs * fields in
      let a = iota len and b = iota len in
      Ref.aos_to_soa ~structs ~fields a;
      Skinny_f64.aos_to_soa ~structs ~fields b;
      to_list a = to_list b)

let prop_roundtrip =
  QCheck2.Test.make ~name:"skinny soa_to_aos inverts aos_to_soa" ~count:120
    QCheck2.Gen.(pair (int_range 1 400) (int_range 1 32))
    (fun (structs, fields) ->
      let buf = iota (structs * fields) in
      Skinny_f64.aos_to_soa ~structs ~fields buf;
      Skinny_f64.soa_to_aos ~structs ~fields buf;
      to_list buf = List.init (structs * fields) float_of_int)

let tests =
  [
    Alcotest.test_case "matches generic reference" `Quick test_matches_reference;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "SoA layout" `Quick test_soa_layout;
    Alcotest.test_case "errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest prop_random_shapes;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
