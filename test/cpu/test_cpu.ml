let () =
  Alcotest.run "xpose_cpu"
    [
      ("pool", Suite_pool.tests);
      ("par_transpose", Suite_par_transpose.tests);
      ("cache_aware", Suite_cache_aware.tests);
      ("fused", Suite_fused.tests);
      ("f64_kernels", Suite_f64.tests);
      ("par_cache_aware", Suite_par_cache_aware.tests);
      ("skinny", Suite_skinny.tests);
    ]
