open Xpose_core
open Xpose_cpu
module S = Storage.Int_elt
module A = Instances.I
module PC = Par_cache_aware.Make (Storage.Int_elt)

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

let reference m n =
  let p = Plan.make ~m ~n in
  let buf = iota_buf (m * n) in
  let tmp = S.create (Plan.scratch_elements p) in
  A.c2r p buf ~tmp;
  buf_to_list buf

let test_matches_plain () =
  Pool.with_pool ~workers:3 (fun pool ->
      List.iter
        (fun (m, n) ->
          let p = Plan.make ~m ~n in
          let buf = iota_buf (m * n) in
          PC.c2r pool p buf;
          Alcotest.(check (list int))
            (Printf.sprintf "par cache-aware c2r %dx%d" m n)
            (reference m n) (buf_to_list buf);
          PC.r2c pool p buf;
          Alcotest.(check (list int)) "r2c inverts"
            (List.init (m * n) Fun.id) (buf_to_list buf))
        [ (1, 1); (3, 8); (4, 8); (48, 36); (36, 48); (97, 55); (16, 100) ])

let test_widths () =
  Pool.with_pool ~workers:2 (fun pool ->
      let m = 40 and n = 56 in
      List.iter
        (fun width ->
          let p = Plan.make ~m ~n in
          let buf = iota_buf (m * n) in
          PC.c2r ~width pool p buf;
          Alcotest.(check (list int))
            (Printf.sprintf "width %d" width)
            (reference m n) (buf_to_list buf))
        [ 1; 3; 16; 64; 200 ])

let test_transpose_dispatch () =
  Pool.with_pool ~workers:2 (fun pool ->
      List.iter
        (fun (m, n, order) ->
          let buf = iota_buf (m * n) in
          let original = A.copy buf in
          PC.transpose ~order pool ~m ~n buf;
          Alcotest.(check bool)
            (Printf.sprintf "dispatch %dx%d" m n)
            true
            (A.is_transpose_of ~order ~m ~n ~original buf))
        [ (33, 12, Layout.Row_major); (12, 33, Layout.Col_major) ])

let prop_random =
  QCheck2.Test.make ~name:"par cache-aware = plain over random shapes"
    ~count:50
    QCheck2.Gen.(
      triple (int_range 1 48) (int_range 1 48) (int_range 1 4))
    (fun (m, n, workers) ->
      Pool.with_pool ~workers (fun pool ->
          let p = Plan.make ~m ~n in
          let buf = iota_buf (m * n) in
          PC.c2r pool p buf;
          buf_to_list buf = reference m n))

let tests =
  [
    Alcotest.test_case "matches plain" `Quick test_matches_plain;
    Alcotest.test_case "group widths" `Quick test_widths;
    Alcotest.test_case "dispatch" `Quick test_transpose_dispatch;
    QCheck_alcotest.to_alcotest prop_random;
  ]
