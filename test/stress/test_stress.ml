(* Exhaustive cross-implementation agreement over every shape with
   m, n <= LIMIT: the long-tail complement to the per-module suites and
   the randomized fuzzer. *)

open Xpose_core
module S = Storage.Int_elt
module A = Instances.I
module Cache = Xpose_cpu.Cache_aware.Make (S)
module Cycle = Xpose_baselines.Cycle_follow.Make (S)
module Gus = Xpose_baselines.Gustavson.Make (S)
module SungI = Xpose_baselines.Sung.Make (S)

let limit = 26

let iota len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let equal_expected ~m ~n buf =
  let ok = ref true in
  for l = 0 to (m * n) - 1 do
    if S.get buf l <> (n * (l mod m)) + (l / m) then ok := false
  done;
  !ok

let check name ~m ~n run =
  let buf = iota (m * n) in
  run buf;
  if not (equal_expected ~m ~n buf) then
    Alcotest.failf "%s diverges at m=%d n=%d" name m n

let test_exhaustive_c2r_variants () =
  for m = 1 to limit do
    for n = 1 to limit do
      let p = Plan.make ~m ~n in
      let tmp = S.create (Plan.scratch_elements p) in
      check "gather" ~m ~n (fun b -> A.c2r ~variant:Algo.C2r_gather p b ~tmp);
      check "scatter" ~m ~n (fun b -> A.c2r ~variant:Algo.C2r_scatter p b ~tmp);
      check "decomposed" ~m ~n (fun b ->
          A.c2r ~variant:Algo.C2r_decomposed p b ~tmp)
    done
  done

let test_exhaustive_r2c_roundtrip () =
  for m = 1 to limit do
    for n = 1 to limit do
      let p = Plan.make ~m ~n in
      let tmp = S.create (Plan.scratch_elements p) in
      let buf = iota (m * n) in
      A.c2r p buf ~tmp;
      A.r2c ~variant:Algo.R2c_fused p buf ~tmp;
      A.c2r p buf ~tmp;
      A.r2c ~variant:Algo.R2c_decomposed p buf ~tmp;
      for l = 0 to (m * n) - 1 do
        if S.get buf l <> l then
          Alcotest.failf "r2c roundtrip diverges at m=%d n=%d" m n
      done
    done
  done

let test_exhaustive_cache_aware () =
  for m = 1 to limit do
    for n = 1 to limit do
      let p = Plan.make ~m ~n in
      let tmp = S.create (Plan.scratch_elements p) in
      check "cache-aware" ~m ~n (fun b -> Cache.c2r ~width:5 p b ~tmp)
    done
  done

let test_exhaustive_baselines () =
  for m = 1 to limit do
    for n = 1 to limit do
      check "cycle-bitvec" ~m ~n (fun b -> Cycle.transpose_bitvec ~m ~n b);
      check "gustavson" ~m ~n (fun b -> Gus.transpose ~m ~n b);
      check "sung" ~m ~n (fun b -> SungI.transpose ~m ~n b)
    done
  done

let test_exhaustive_f64_kernels () =
  let module F = Storage.Float64 in
  for m = 1 to limit do
    for n = 1 to limit do
      let buf = F.create (m * n) in
      Storage.fill_iota (module F) buf;
      Kernels_f64.transpose ~m ~n buf;
      for l = 0 to (m * n) - 1 do
        if F.get buf l <> float_of_int ((n * (l mod m)) + (l / m)) then
          Alcotest.failf "kernels_f64 diverges at m=%d n=%d" m n
      done
    done
  done

let test_exhaustive_tensor_flat_cases () =
  let module T = Tensor3.Make (S) in
  for d0 = 1 to 9 do
    for d1 = 1 to 9 do
      for d2 = 1 to 9 do
        let buf = iota (d0 * d1 * d2) in
        T.permute ~dims:(d0, d1, d2) ~perm:(2, 1, 0) buf;
        (* spot-check via the index spec *)
        let ok = ref true in
        for i0 = 0 to d0 - 1 do
          for i1 = 0 to d1 - 1 do
            for i2 = 0 to d2 - 1 do
              let src = (((i0 * d1) + i1) * d2) + i2 in
              let dst =
                T.permuted_index ~dims:(d0, d1, d2) ~perm:(2, 1, 0)
                  (i0, i1, i2)
              in
              if S.get buf dst <> src then ok := false
            done
          done
        done;
        if not !ok then
          Alcotest.failf "tensor (2,1,0) diverges at %d %d %d" d0 d1 d2
      done
    done
  done

let () =
  Alcotest.run "xpose_stress"
    [
      ( "exhaustive",
        [
          Alcotest.test_case "c2r variants, all shapes <= 26" `Slow
            test_exhaustive_c2r_variants;
          Alcotest.test_case "r2c roundtrips, all shapes <= 26" `Slow
            test_exhaustive_r2c_roundtrip;
          Alcotest.test_case "cache-aware, all shapes <= 26" `Slow
            test_exhaustive_cache_aware;
          Alcotest.test_case "baselines, all shapes <= 26" `Slow
            test_exhaustive_baselines;
          Alcotest.test_case "f64 kernels, all shapes <= 26" `Slow
            test_exhaustive_f64_kernels;
          Alcotest.test_case "tensor (2,1,0), all shapes <= 9^3" `Slow
            test_exhaustive_tensor_flat_cases;
        ] );
    ]
