open Xpose_core
open Xpose_baselines
module S = Storage.Int_elt
module C = Cycle_follow.Make (Storage.Int_elt)
module A = Instances.I

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

let expected ~m ~n = List.init (m * n) (fun l -> (n * (l mod m)) + (l / m))

let check name f m n =
  let buf = iota_buf (m * n) in
  f ~m ~n buf;
  Alcotest.(check (list int))
    (Printf.sprintf "%s %dx%d" name m n)
    (expected ~m ~n) (buf_to_list buf)

let shapes = [ (1, 1); (1, 9); (9, 1); (3, 8); (4, 8); (12, 12); (37, 18); (50, 49) ]

let test_bitvec () =
  List.iter (fun (m, n) -> check "bitvec" (C.transpose_bitvec ?order:None) m n) shapes

let test_leader () =
  List.iter (fun (m, n) -> check "leader" (C.transpose_leader ?order:None) m n) shapes

let test_col_major () =
  let m = 6 and n = 10 in
  let buf = iota_buf (m * n) in
  let original = A.copy buf in
  C.transpose_bitvec ~order:Layout.Col_major ~m ~n buf;
  Alcotest.(check bool) "col-major bitvec" true
    (A.is_transpose_of ~order:Layout.Col_major ~m ~n ~original buf)

let test_cycle_count () =
  (* Square matrices: each off-diagonal pair is a 2-cycle plus m fixed
     points: m + m(m-1)/2 cycles. *)
  Alcotest.(check int) "4x4" (4 + 6) (C.cycle_count ~m:4 ~n:4);
  (* Known small case: 3x2 permutation 0->0, 1->3->4->2->1, 5->5. *)
  Alcotest.(check int) "3x2" 3 (C.cycle_count ~m:3 ~n:2);
  Alcotest.(check int) "1xn" 6 (C.cycle_count ~m:1 ~n:6)

let test_errors () =
  let buf = iota_buf 10 in
  Alcotest.check_raises "size" (Invalid_argument "Cycle_follow: buffer size")
    (fun () -> C.transpose_bitvec ~m:3 ~n:4 buf)

let prop_both_agree =
  QCheck2.Test.make ~name:"bitvec and leader agree with reference" ~count:100
    QCheck2.Gen.(pair (int_range 1 40) (int_range 1 40))
    (fun (m, n) ->
      let e = expected ~m ~n in
      let b1 = iota_buf (m * n) in
      C.transpose_bitvec ~m ~n b1;
      let b2 = iota_buf (m * n) in
      C.transpose_leader ~m ~n b2;
      buf_to_list b1 = e && buf_to_list b2 = e)

let tests =
  [
    Alcotest.test_case "bitvec variant" `Quick test_bitvec;
    Alcotest.test_case "leader variant" `Quick test_leader;
    Alcotest.test_case "column-major" `Quick test_col_major;
    Alcotest.test_case "cycle count" `Quick test_cycle_count;
    Alcotest.test_case "errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest prop_both_agree;
  ]
