let () =
  Alcotest.run "xpose_baselines"
    [
      ("cycle_follow", Suite_cycle_follow.tests);
      ("gustavson", Suite_gustavson.tests);
      ("sung", Suite_sung.tests);
      ("oop", Suite_oop.tests);
    ]
