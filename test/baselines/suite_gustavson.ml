open Xpose_core
open Xpose_baselines
module S = Storage.Int_elt
module G = Gustavson.Make (Storage.Int_elt)

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

let expected ~m ~n = List.init (m * n) (fun l -> (n * (l mod m)) + (l / m))

let check ?pool ?target_tile m n =
  let buf = iota_buf (m * n) in
  G.transpose ?pool ?target_tile ~m ~n buf;
  Alcotest.(check (list int))
    (Printf.sprintf "gustavson %dx%d" m n)
    (expected ~m ~n) (buf_to_list buf)

let test_tile_dims () =
  Alcotest.(check (pair int int)) "divisible" (32, 24) (G.tile_dims ~m:64 ~n:24 ());
  Alcotest.(check (pair int int)) "primes" (1, 1) (G.tile_dims ~m:37 ~n:41 ());
  Alcotest.(check (pair int int)) "mixed" (30, 32)
    (G.tile_dims ~m:90 ~n:96 ());
  Alcotest.(check (pair int int)) "custom target" (8, 6)
    (G.tile_dims ~target_tile:8 ~m:64 ~n:54 ())

let test_divisible_shapes () =
  List.iter (fun (m, n) -> check m n) [ (8, 8); (16, 32); (32, 16); (64, 48); (96, 60) ]

let test_awkward_shapes () =
  (* Prime and near-prime dimensions: degenerate tiles, still correct. *)
  List.iter (fun (m, n) -> check m n) [ (37, 41); (1, 13); (13, 1); (7, 49); (50, 49) ]

let test_small_tiles () =
  List.iter (fun tt -> check ~target_tile:tt 24 36) [ 1; 2; 5; 7; 24 ]

let test_parallel_matches () =
  Xpose_cpu.Pool.with_pool ~workers:3 (fun pool ->
      List.iter (fun (m, n) -> check ~pool m n) [ (48, 64); (37, 18) ])

let test_errors () =
  let buf = iota_buf 10 in
  Alcotest.check_raises "size" (Invalid_argument "Gustavson: buffer size")
    (fun () -> G.transpose ~m:3 ~n:4 buf)

let prop_matches_reference =
  QCheck2.Test.make ~name:"gustavson = reference transpose" ~count:80
    QCheck2.Gen.(triple (int_range 1 60) (int_range 1 60) (int_range 1 16))
    (fun (m, n, tt) ->
      let buf = iota_buf (m * n) in
      G.transpose ~target_tile:tt ~m ~n buf;
      buf_to_list buf = expected ~m ~n)

let tests =
  [
    Alcotest.test_case "tile dims" `Quick test_tile_dims;
    Alcotest.test_case "divisible shapes" `Quick test_divisible_shapes;
    Alcotest.test_case "awkward shapes" `Quick test_awkward_shapes;
    Alcotest.test_case "small tiles" `Quick test_small_tiles;
    Alcotest.test_case "parallel matches" `Quick test_parallel_matches;
    Alcotest.test_case "errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest prop_matches_reference;
  ]
