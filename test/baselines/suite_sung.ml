open Xpose_core
open Xpose_baselines
module S = Storage.Int_elt
module Su = Sung.Make (Storage.Int_elt)

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

let expected ~m ~n = List.init (m * n) (fun l -> (n * (l mod m)) + (l / m))

let test_factorize () =
  Alcotest.(check (list int)) "7200" [ 2; 2; 2; 2; 2; 3; 3; 5; 5 ] (Sung.factorize 7200);
  Alcotest.(check (list int)) "1" [] (Sung.factorize 1);
  Alcotest.(check (list int)) "prime" [ 7919 ] (Sung.factorize 7919);
  Alcotest.(check (list int)) "7223" [ 31; 233 ] (Sung.factorize 7223)

let test_heuristic_paper_values () =
  (* The paper replicates Sung's reported 7200x1800 result with tile
     32x72 and reports 7223x10368 with tile 31x64. *)
  Alcotest.(check int) "7200" 32 (Sung.heuristic_tile 7200);
  Alcotest.(check int) "1800" 72 (Sung.heuristic_tile 1800);
  Alcotest.(check int) "7223" 31 (Sung.heuristic_tile 7223);
  Alcotest.(check int) "10368" 64 (Sung.heuristic_tile 10368);
  Alcotest.(check int) "large prime -> degenerate" 1 (Sung.heuristic_tile 7919);
  Alcotest.(check (pair int int)) "tile_dims" (32, 72)
    (Sung.tile_dims ~m:7200 ~n:1800 ())

let test_transpose_default_tiles () =
  List.iter
    (fun (m, n) ->
      let buf = iota_buf (m * n) in
      Su.transpose ~m ~n buf;
      Alcotest.(check (list int))
        (Printf.sprintf "sung %dx%d" m n)
        (expected ~m ~n) (buf_to_list buf))
    [ (8, 8); (12, 30); (37, 18); (41, 37); (72, 32) ]

let test_tile_mismatch () =
  let buf = iota_buf (7 * 9) in
  (try
     Su.transpose ~tile:(2, 3) ~m:7 ~n:9 buf;
     Alcotest.fail "expected Tile_mismatch"
   with Sung.Tile_mismatch msg ->
     Alcotest.(check string) "message"
       "tile 2x3 does not divide matrix 7x9" msg)

let test_explicit_tile () =
  let m = 12 and n = 18 in
  let buf = iota_buf (m * n) in
  Su.transpose ~tile:(4, 6) ~m ~n buf;
  Alcotest.(check (list int)) "explicit tile" (expected ~m ~n) (buf_to_list buf)

let prop_heuristic_divides =
  QCheck2.Test.make ~name:"heuristic tile divides dimension and <= threshold"
    ~count:500
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 1 128))
    (fun (x, t) ->
      let h = Sung.heuristic_tile ~threshold:t x in
      h >= 1 && h <= max t 1 && x mod h = 0)

let prop_transpose_correct =
  QCheck2.Test.make ~name:"sung transpose = reference" ~count:80
    QCheck2.Gen.(pair (int_range 1 50) (int_range 1 50))
    (fun (m, n) ->
      let buf = iota_buf (m * n) in
      Su.transpose ~m ~n buf;
      buf_to_list buf = expected ~m ~n)

let tests =
  [
    Alcotest.test_case "factorize" `Quick test_factorize;
    Alcotest.test_case "heuristic: paper's worked values" `Quick
      test_heuristic_paper_values;
    Alcotest.test_case "transpose (default tiles)" `Quick
      test_transpose_default_tiles;
    Alcotest.test_case "tile mismatch rejected" `Quick test_tile_mismatch;
    Alcotest.test_case "explicit tile" `Quick test_explicit_tile;
    QCheck_alcotest.to_alcotest prop_heuristic_divides;
    QCheck_alcotest.to_alcotest prop_transpose_correct;
  ]
