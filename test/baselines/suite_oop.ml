open Xpose_core
open Xpose_baselines
module S = Storage.Int_elt
module O = Oop.Make (Storage.Int_elt)

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

let expected ~m ~n = List.init (m * n) (fun l -> (n * (l mod m)) + (l / m))

let test_naive () =
  List.iter
    (fun (m, n) ->
      let src = iota_buf (m * n) in
      let dst = S.create (m * n) in
      O.naive ~m ~n src dst;
      Alcotest.(check (list int)) "naive" (expected ~m ~n) (buf_to_list dst))
    [ (1, 1); (5, 9); (9, 5); (33, 47) ]

let test_blocked_matches_naive () =
  List.iter
    (fun tile ->
      let m = 45 and n = 37 in
      let src = iota_buf (m * n) in
      let dst = S.create (m * n) in
      O.blocked ~tile ~m ~n src dst;
      Alcotest.(check (list int)) "blocked" (expected ~m ~n) (buf_to_list dst))
    [ 1; 4; 32; 100 ]

let test_errors () =
  let src = iota_buf 12 and dst = S.create 11 in
  Alcotest.check_raises "sizes" (Invalid_argument "Oop: buffer sizes") (fun () ->
      O.naive ~m:3 ~n:4 src dst);
  let dst = S.create 12 in
  Alcotest.check_raises "tile" (Invalid_argument "Oop.blocked: tile must be positive")
    (fun () -> O.blocked ~tile:0 ~m:3 ~n:4 src dst)

let test_mkl_like_api () =
  let module M = Mkl_like.Make (Storage.Int_elt) in
  let m = 14 and n = 9 in
  let buf = iota_buf (m * n) in
  M.imatcopy ~rows:m ~cols:n buf;
  Alcotest.(check (list int)) "imatcopy" (expected ~m ~n) (buf_to_list buf)

let tests =
  [
    Alcotest.test_case "naive" `Quick test_naive;
    Alcotest.test_case "blocked matches" `Quick test_blocked_matches_naive;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "mkl-like wrapper" `Quick test_mkl_like_api;
  ]
