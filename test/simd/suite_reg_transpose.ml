open Xpose_simd_machine
open Xpose_simd

let cfg = Config.k20c

let make ~regs =
  let mem = Memory.create cfg ~words:(max 1 (regs * 32)) in
  (mem, Warp.create mem ~regs)

(* Row-major tile content: register (r, lane j) = r*lanes + j. *)
let fill_row_major w =
  for r = 0 to Warp.regs w - 1 do
    for j = 0 to Warp.lanes w - 1 do
      Warp.set w ~reg:r ~lane:j ((r * Warp.lanes w) + j)
    done
  done

let check_col_major w name =
  let m = Warp.regs w in
  for r = 0 to m - 1 do
    for j = 0 to Warp.lanes w - 1 do
      Alcotest.(check int)
        (Printf.sprintf "%s m=%d (%d,%d)" name m r j)
        ((j * m) + r)
        (Warp.get w ~reg:r ~lane:j)
    done
  done

let test_r2c_all_struct_sizes () =
  (* every struct size the paper's Figures 8/9 sweep, and then some *)
  for m = 1 to 40 do
    let _, w = make ~regs:m in
    fill_row_major w;
    Reg_transpose.r2c w;
    check_col_major w "r2c"
  done

let test_c2r_inverts () =
  for m = 1 to 40 do
    let _, w = make ~regs:m in
    fill_row_major w;
    Reg_transpose.r2c w;
    Reg_transpose.c2r w;
    for r = 0 to m - 1 do
      for j = 0 to 31 do
        Alcotest.(check int) "roundtrip" ((r * 32) + j)
          (Warp.get w ~reg:r ~lane:j)
      done
    done
  done

let test_instruction_budget () =
  (* The transpose must cost what §6.2 promises: m shuffles plus one or
     two barrel rotations of m*ceil(log2 m) selects. *)
  List.iter
    (fun m ->
      let mem, w = make ~regs:m in
      Memory.reset mem;
      Reg_transpose.r2c w;
      let actual = (Memory.stats mem).Memory.instructions in
      let expected = Reg_transpose.instruction_count ~lanes:32 ~regs:m `R2c in
      Alcotest.(check int) (Printf.sprintf "instrs m=%d" m) expected actual)
    [ 1; 2; 3; 4; 7; 8; 16; 31; 32 ]

let test_no_memory_traffic () =
  (* the whole point: the in-register transpose touches no memory *)
  let mem, w = make ~regs:8 in
  fill_row_major w;
  Memory.reset mem;
  Reg_transpose.r2c w;
  let s = Memory.stats mem in
  Alcotest.(check int) "no loads" 0 s.Memory.load_transactions;
  Alcotest.(check int) "no stores" 0 s.Memory.store_transactions

let prop_roundtrip_random_m =
  QCheck2.Test.make ~name:"c2r . r2c = id on register tiles" ~count:100
    QCheck2.Gen.(int_range 1 64)
    (fun m ->
      let _, w = make ~regs:m in
      fill_row_major w;
      Reg_transpose.c2r w;
      Reg_transpose.r2c w;
      let ok = ref true in
      for r = 0 to m - 1 do
        for j = 0 to 31 do
          if Warp.get w ~reg:r ~lane:j <> (r * 32) + j then ok := false
        done
      done;
      !ok)

let tests =
  [
    Alcotest.test_case "r2c routes structs to lanes (m=1..40)" `Quick
      test_r2c_all_struct_sizes;
    Alcotest.test_case "c2r inverts r2c" `Quick test_c2r_inverts;
    Alcotest.test_case "instruction budget (§6.2)" `Quick test_instruction_budget;
    Alcotest.test_case "no memory traffic" `Quick test_no_memory_traffic;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_m;
  ]
