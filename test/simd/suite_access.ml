open Xpose_simd_machine
open Xpose_simd

let cfg = Config.k20c
let n_structs = 256

let deterministic_perm n =
  (* multiplicative shuffle by a unit mod n works when gcd = 1; otherwise
     fall back to a rotation-based mix; always a permutation. *)
  let a = 97 in
  if Xpose_core.Intmath.is_coprime a n then
    Array.init n (fun i -> a * i mod n)
  else Array.init n (fun i -> (i + (n / 2)) mod n)

let methods = [ Access.C2r; Access.Direct; Access.Vector ]

let test_store_images_agree () =
  List.iter
    (fun m ->
      let images =
        List.map
          (fun meth ->
            Access.final_image cfg ~struct_words:m ~n_structs Access.Unit_stride
              meth)
          methods
      in
      match images with
      | [ a; b; c ] ->
          Alcotest.(check (array int)) (Printf.sprintf "c2r=direct m=%d" m) a b;
          Alcotest.(check (array int)) (Printf.sprintf "c2r=vector m=%d" m) a c;
          Array.iteri
            (fun i v -> if v <> i then Alcotest.failf "image not iota at %d" i)
            a
      | _ -> assert false)
    [ 1; 2; 4; 7; 16 ]

let test_store_images_agree_random () =
  let m = 5 in
  let pat = Access.Random (deterministic_perm n_structs) in
  let a = Access.final_image cfg ~struct_words:m ~n_structs pat Access.C2r in
  let b = Access.final_image cfg ~struct_words:m ~n_structs pat Access.Direct in
  Alcotest.(check (array int)) "random store image" a b

let test_loads_checksum () =
  (* run_load validates the checksum internally; a pass is the assertion *)
  List.iter
    (fun meth ->
      List.iter
        (fun m ->
          ignore
            (Access.run_load cfg ~struct_words:m ~n_structs Access.Unit_stride
               meth))
        [ 1; 3; 8; 16 ])
    methods

let test_copy_verifies () =
  List.iter
    (fun meth ->
      ignore
        (Access.run_copy cfg ~struct_words:6 ~n_structs Access.Unit_stride meth);
      ignore
        (Access.run_copy cfg ~struct_words:6 ~n_structs
           (Access.Random (deterministic_perm n_structs))
           meth))
    methods

let test_unit_stride_ordering () =
  (* Fig. 8 shape: for large structs, C2R >> Vector >= Direct on stores. *)
  let m = 16 in
  let r meth =
    (Access.run_store cfg ~struct_words:m ~n_structs Access.Unit_stride meth)
      .Access.gbps
  in
  let c2r = r Access.C2r and direct = r Access.Direct and vec = r Access.Vector in
  Alcotest.(check bool)
    (Printf.sprintf "c2r(%.1f) > vector(%.1f)" c2r vec)
    true (c2r > vec);
  Alcotest.(check bool)
    (Printf.sprintf "vector(%.1f) >= direct(%.1f)" vec direct)
    true (vec >= direct);
  Alcotest.(check bool)
    (Printf.sprintf "c2r/direct = %.1f >= 10" (c2r /. direct))
    true
    (c2r /. direct >= 10.0)

let test_vector_bump_at_16_bytes () =
  (* Fig. 8: hardware vectors shine exactly when the struct is one float4. *)
  let r m =
    (Access.run_store cfg ~struct_words:m ~n_structs Access.Unit_stride
       Access.Vector)
      .Access.gbps
  in
  let at16 = r 4 and at32 = r 8 and at8 = r 2 in
  Alcotest.(check bool) "16B beats 32B" true (at16 > at32);
  (* at 8B the spans still tile contiguously, so 16B is no worse, not
     strictly better, in this model *)
  Alcotest.(check bool) "16B at least as good as 8B" true (at16 >= at8)

let test_c2r_near_peak () =
  let m = 8 in
  let g =
    (Access.run_copy cfg ~struct_words:m ~n_structs Access.Unit_stride
       Access.C2r)
      .Access.gbps
  in
  Alcotest.(check bool)
    (Printf.sprintf "near peak: %.1f" g)
    true
    (g > 0.6 *. cfg.Config.effective_gbps)

let test_random_improves_with_size () =
  (* Fig. 9 shape: random-access throughput rises with struct size. *)
  let pat = Access.Random (deterministic_perm n_structs) in
  let r m =
    (Access.run_load cfg ~struct_words:m ~n_structs pat Access.C2r).Access.gbps
  in
  let small = r 2 and large = r 16 in
  Alcotest.(check bool)
    (Printf.sprintf "large struct faster: %.1f > %.1f" large small)
    true (large > small)

let test_random_c2r_geq_direct () =
  let pat = Access.Random (deterministic_perm n_structs) in
  List.iter
    (fun m ->
      let c =
        (Access.run_store cfg ~struct_words:m ~n_structs pat Access.C2r)
          .Access.gbps
      and d =
        (Access.run_store cfg ~struct_words:m ~n_structs pat Access.Direct)
          .Access.gbps
      in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d c2r(%.1f) >= direct(%.1f)" m c d)
        true (c >= d))
    [ 2; 8; 16 ]

let test_invalid_args () =
  Alcotest.check_raises "n_structs multiple"
    (Invalid_argument "Access: n_structs must be a positive multiple of lanes")
    (fun () ->
      ignore
        (Access.run_store cfg ~struct_words:4 ~n_structs:33 Access.Unit_stride
           Access.C2r));
  Alcotest.check_raises "perm size"
    (Invalid_argument "Access: Random permutation must cover all structures")
    (fun () ->
      ignore
        (Access.run_store cfg ~struct_words:4 ~n_structs:64
           (Access.Random [| 0 |]) Access.C2r))

let tests =
  [
    Alcotest.test_case "store images agree (unit stride)" `Quick
      test_store_images_agree;
    Alcotest.test_case "store images agree (random)" `Quick
      test_store_images_agree_random;
    Alcotest.test_case "loads checksum" `Quick test_loads_checksum;
    Alcotest.test_case "copies verify" `Quick test_copy_verifies;
    Alcotest.test_case "fig8 ordering at 64B" `Quick test_unit_stride_ordering;
    Alcotest.test_case "fig8 vector bump at 16B" `Quick
      test_vector_bump_at_16_bytes;
    Alcotest.test_case "fig8 c2r near peak" `Quick test_c2r_near_peak;
    Alcotest.test_case "fig9 rises with struct size" `Quick
      test_random_improves_with_size;
    Alcotest.test_case "fig9 c2r >= direct" `Quick test_random_c2r_geq_direct;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
  ]
