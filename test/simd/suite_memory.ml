open Xpose_simd_machine

let cfg = Config.k20c
let some_all n f = Array.init n (fun i -> Some (f i))

let test_config_validate () =
  Config.validate cfg;
  Alcotest.check_raises "bad lanes" (Invalid_argument "Config: lanes")
    (fun () -> Config.validate { cfg with Config.lanes = 0 });
  Alcotest.check_raises "bad line"
    (Invalid_argument "Config: line_bytes must be a positive multiple of word_bytes")
    (fun () -> Config.validate { cfg with Config.line_bytes = 6 })

let test_coalesced_load_one_line () =
  let mem = Memory.create cfg ~words:1024 in
  for a = 0 to 1023 do
    Memory.poke mem a (a * 10)
  done;
  Memory.reset mem;
  (* 32 lanes x 4B consecutive = 128B = four full 32B sectors *)
  let values = Memory.warp_load mem ~addrs:(some_all 32 (fun j -> j)) in
  let s = Memory.stats mem in
  Alcotest.(check int) "four sector transactions" 4 s.Memory.load_transactions;
  Alcotest.(check int) "useful" 128 s.Memory.useful_bytes;
  Alcotest.(check int) "instr" 1 s.Memory.instructions;
  Array.iteri
    (fun j v -> Alcotest.(check (option int)) "value" (Some (j * 10)) v)
    values

let test_strided_load_many_lines () =
  let mem = Memory.create cfg ~words:65536 in
  (* stride of 64 words = 256 bytes: every lane hits its own sector *)
  ignore (Memory.warp_load mem ~addrs:(some_all 32 (fun j -> j * 64)));
  let s = Memory.stats mem in
  Alcotest.(check int) "32 transactions" 32 s.Memory.load_transactions

let test_inactive_lanes () =
  let mem = Memory.create cfg ~words:128 in
  let addrs = Array.init 32 (fun j -> if j < 4 then Some j else None) in
  ignore (Memory.warp_load mem ~addrs);
  let s = Memory.stats mem in
  Alcotest.(check int) "one sector" 1 s.Memory.load_transactions;
  Alcotest.(check int) "useful 16B" 16 s.Memory.useful_bytes

let test_store_partial_penalty () =
  let mem = Memory.create cfg ~words:65536 in
  (* full-line store: no penalty *)
  Memory.warp_store mem
    ~addrs:(some_all 32 (fun j -> j))
    ~values:(some_all 32 (fun j -> j));
  let full = (Memory.stats mem).Memory.weighted_bytes in
  Alcotest.(check (float 0.01)) "full sectors weighted" 128.0 full;
  Memory.reset mem;
  (* scattered store: write-allocate factor *)
  Memory.warp_store mem
    ~addrs:(some_all 32 (fun j -> j * 64))
    ~values:(some_all 32 (fun j -> j));
  let scattered = (Memory.stats mem).Memory.weighted_bytes in
  Alcotest.(check (float 0.01)) "penalized"
    (32.0 *. 32.0 *. cfg.Config.partial_store_factor)
    scattered

let test_store_moves_data () =
  let mem = Memory.create cfg ~words:64 in
  Memory.warp_store mem
    ~addrs:(some_all 32 (fun j -> j * 2))
    ~values:(some_all 32 (fun j -> 100 + j));
  for j = 0 to 31 do
    Alcotest.(check int) "written" (100 + j) (Memory.peek mem (j * 2))
  done

let test_errors () =
  let mem = Memory.create cfg ~words:16 in
  Alcotest.check_raises "arity"
    (Invalid_argument "Memory: address vector must have one slot per lane")
    (fun () -> ignore (Memory.warp_load mem ~addrs:[| Some 0 |]));
  Alcotest.check_raises "range" (Invalid_argument "Memory: address out of range")
    (fun () -> ignore (Memory.warp_load mem ~addrs:(some_all 32 (fun j -> j))));
  Alcotest.check_raises "missing value"
    (Invalid_argument "Memory: active lane without a value") (fun () ->
      Memory.warp_store mem
        ~addrs:(Array.init 32 (fun j -> if j = 0 then Some 0 else None))
        ~values:(Array.make 32 None))

let test_charge_stream () =
  let mem = Memory.create cfg ~words:0 in
  Memory.charge_stream mem Memory.Load ~bytes:(1 lsl 20);
  let s = Memory.stats mem in
  Alcotest.(check int) "lines" (1 lsl 20 / 32) s.Memory.load_transactions;
  Alcotest.(check int) "useful" (1 lsl 20) s.Memory.useful_bytes;
  (* streaming at 180 GB/s: 1 MiB in ~5825 ns *)
  Alcotest.(check bool) "time sane" true
    (Memory.time_ns mem > 5000.0 && Memory.time_ns mem < 7000.0);
  let g = Memory.gbps mem ~useful_bytes:s.Memory.useful_bytes in
  Alcotest.(check (float 1.0)) "streaming gbps" cfg.Config.effective_gbps g

let test_charge_warp_span () =
  let mem = Memory.create cfg ~words:65536 in
  (* 32 lanes x 4-word (16B) spans, contiguous: 32*16=512B = 16 sectors *)
  Memory.charge_warp_span mem Memory.Load
    ~starts:(some_all 32 (fun j -> j * 4))
    ~span:4;
  let s = Memory.stats mem in
  Alcotest.(check int) "16 sectors" 16 s.Memory.load_transactions;
  Alcotest.(check int) "useful 512" 512 s.Memory.useful_bytes;
  Alcotest.check_raises "span range" (Invalid_argument "Memory: span out of range")
    (fun () ->
      Memory.charge_warp_span mem Memory.Load
        ~starts:(some_all 32 (fun _ -> 65535))
        ~span:2)

let test_instr_time_floor () =
  let mem = Memory.create cfg ~words:0 in
  Memory.charge_instrs mem 1000000;
  Alcotest.(check (float 1.0))
    "instruction-bound time"
    (1000000.0 *. cfg.Config.instr_ns)
    (Memory.time_ns mem)

let prop_line_count_vs_bruteforce =
  QCheck2.Test.make ~name:"warp line counting = brute force" ~count:500
    QCheck2.Gen.(array_size (return 32) (int_range 0 4095))
    (fun raw ->
      let mem = Memory.create cfg ~words:4096 in
      let addrs = Array.map (fun a -> Some a) raw in
      ignore (Memory.warp_load mem ~addrs);
      let expected =
        Array.to_list raw
        |> List.map (fun a -> a / 8 (* 32B sector = 8 words *))
        |> List.sort_uniq compare |> List.length
      in
      (Memory.stats mem).Memory.load_transactions = expected)

let prop_span_count_vs_bruteforce =
  QCheck2.Test.make ~name:"warp span counting = brute force" ~count:300
    QCheck2.Gen.(
      pair (array_size (return 32) (int_range 0 4000)) (int_range 1 16))
    (fun (raw, span) ->
      let mem = Memory.create cfg ~words:4096 in
      let starts = Array.map (fun a -> Some a) raw in
      Memory.charge_warp_span mem Memory.Load ~starts ~span;
      let expected =
        Array.to_list raw
        |> List.concat_map (fun a ->
               List.init span (fun k -> (a + k) / 8 (* words per sector *)))
        |> List.sort_uniq compare |> List.length
      in
      (Memory.stats mem).Memory.load_transactions = expected)

let tests =
  [
    Alcotest.test_case "config validation" `Quick test_config_validate;
    Alcotest.test_case "coalesced load = 1 line" `Quick test_coalesced_load_one_line;
    Alcotest.test_case "strided load = 32 lines" `Quick test_strided_load_many_lines;
    Alcotest.test_case "inactive lanes" `Quick test_inactive_lanes;
    Alcotest.test_case "partial store penalty" `Quick test_store_partial_penalty;
    Alcotest.test_case "store moves data" `Quick test_store_moves_data;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "charge stream" `Quick test_charge_stream;
    Alcotest.test_case "charge warp span" `Quick test_charge_warp_span;
    Alcotest.test_case "instruction time floor" `Quick test_instr_time_floor;
    QCheck_alcotest.to_alcotest prop_line_count_vs_bruteforce;
    QCheck_alcotest.to_alcotest prop_span_count_vs_bruteforce;
  ]
