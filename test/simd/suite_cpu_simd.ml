(* The in-register transposition must work for any machine shape (§1:
   "both CPUs and GPUs"): exercise the AVX-512-like 16-lane config and a
   few synthetic machines. *)

open Xpose_simd_machine
open Xpose_simd

let machines =
  [
    ("avx512", Config.avx512_like);
    ("k20c", Config.k20c);
    ( "weird-6-lane",
      {
        Config.k20c with
        Config.name = "6 lanes";
        lanes = 6;
        line_bytes = 32;
        coalesce_bytes = 32;
      } );
  ]

let test_reg_transpose_all_machines () =
  List.iter
    (fun (name, cfg) ->
      Config.validate cfg;
      for m = 1 to 24 do
        let mem = Memory.create cfg ~words:0 in
        let w = Warp.create mem ~regs:m in
        let lanes = Warp.lanes w in
        for r = 0 to m - 1 do
          for j = 0 to lanes - 1 do
            Warp.set w ~reg:r ~lane:j ((r * lanes) + j)
          done
        done;
        Reg_transpose.r2c w;
        for r = 0 to m - 1 do
          for j = 0 to lanes - 1 do
            Alcotest.(check int)
              (Printf.sprintf "%s m=%d (%d,%d)" name m r j)
              ((j * m) + r)
              (Warp.get w ~reg:r ~lane:j)
          done
        done;
        Reg_transpose.c2r w;
        for r = 0 to m - 1 do
          for j = 0 to lanes - 1 do
            Alcotest.(check int) "roundtrip" ((r * lanes) + j)
              (Warp.get w ~reg:r ~lane:j)
          done
        done
      done)
    machines

let test_coalesced_on_avx512 () =
  let cfg = Config.avx512_like in
  let m = 5 in
  let mem = Memory.create cfg ~words:(cfg.Config.lanes * m) in
  for a = 0 to (cfg.Config.lanes * m) - 1 do
    Memory.poke mem a (a * 3)
  done;
  Memory.reset mem;
  let w = Warp.create mem ~regs:m in
  Coalesced.load_unit_stride w ~base:0 ~first_struct:0;
  for j = 0 to cfg.Config.lanes - 1 do
    for r = 0 to m - 1 do
      Alcotest.(check int) "struct routed" (((j * m) + r) * 3)
        (Warp.get w ~reg:r ~lane:j)
    done
  done

let test_access_orderings_on_avx512 () =
  let cfg = Config.avx512_like in
  let n_structs = 16 * 16 in
  let g meth =
    (Access.run_store cfg ~struct_words:16 ~n_structs Access.Unit_stride meth)
      .Access.gbps
  in
  let c2r = g Access.C2r and direct = g Access.Direct in
  Alcotest.(check bool)
    (Printf.sprintf "cpu simd: c2r (%.1f) > direct (%.1f)" c2r direct)
    true (c2r > direct);
  Alcotest.(check bool) "near peak" true
    (c2r > 0.5 *. cfg.Config.effective_gbps)

let test_gpu_cost_on_avx512 () =
  (* the cost model is machine-generic; sanity on the CPU config *)
  let cfg = Config.avx512_like in
  let r = Gpu_transpose.auto cfg ~elt_bytes:8 ~m:2000 ~n:1500 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.2f sane" r.Gpu_transpose.gbps)
    true
    (r.Gpu_transpose.gbps > 0.5
    && r.Gpu_transpose.gbps <= 2.0 *. cfg.Config.effective_gbps)

let tests =
  [
    Alcotest.test_case "in-register transpose on all machines" `Quick
      test_reg_transpose_all_machines;
    Alcotest.test_case "coalesced load on avx512-like" `Quick
      test_coalesced_on_avx512;
    Alcotest.test_case "access orderings on avx512-like" `Quick
      test_access_orderings_on_avx512;
    Alcotest.test_case "cost model on avx512-like" `Quick
      test_gpu_cost_on_avx512;
  ]
