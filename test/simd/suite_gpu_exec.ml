open Xpose_simd_machine
open Xpose_simd

let cfg = Config.k20c

let setup ~m ~n =
  let mem =
    Memory.create cfg ~words:((m * n) + Gpu_exec.scratch_words ~m ~n)
  in
  for l = 0 to (m * n) - 1 do
    Memory.poke mem l l
  done;
  mem

let check_transposed mem ~m ~n label =
  for l = 0 to (m * n) - 1 do
    let expected = (n * (l mod m)) + (l / m) in
    if Memory.peek mem l <> expected then
      Alcotest.failf "%s %dx%d: word %d is %d, want %d" label m n l
        (Memory.peek mem l) expected
  done

let shapes = [ (2, 2); (3, 8); (4, 8); (40, 56); (56, 40); (37, 41); (1, 9); (9, 1); (64, 64) ]

let test_c2r_executes_transpose () =
  List.iter
    (fun (m, n) ->
      let mem = setup ~m ~n in
      let r = Gpu_exec.c2r mem ~m ~n in
      check_transposed mem ~m ~n "c2r";
      if m > 1 && n > 1 then
        Alcotest.(check bool) "throughput positive" true (r.Gpu_exec.gbps > 0.0))
    shapes

let test_r2c_executes_transpose () =
  List.iter
    (fun (m, n) ->
      let mem = setup ~m ~n in
      ignore (Gpu_exec.r2c mem ~m ~n);
      check_transposed mem ~m ~n "r2c")
    shapes

let test_r2c_inverts_c2r () =
  let m = 24 and n = 30 in
  let mem = setup ~m ~n in
  ignore (Gpu_exec.c2r mem ~m ~n);
  (* buffer now holds the n x m transpose; r2c on the transposed shape
     brings it back *)
  ignore (Gpu_exec.r2c mem ~m:n ~n:m);
  for l = 0 to (m * n) - 1 do
    Alcotest.(check int) "identity" l (Memory.peek mem l)
  done

let test_onchip_flag () =
  let m = 64 in
  let small = setup ~m ~n:64 in
  let r = Gpu_exec.c2r small ~m ~n:64 in
  Alcotest.(check bool) "64 cols on chip" true r.Gpu_exec.onchip_row_shuffle;
  let n = 4000 in
  let wide = setup ~m:8 ~n in
  let r = Gpu_exec.c2r wide ~m:8 ~n in
  Alcotest.(check bool) "4000 cols off chip" false r.Gpu_exec.onchip_row_shuffle;
  check_transposed wide ~m:8 ~n "offchip c2r"

let test_matches_cost_model () =
  (* The analytic model (Gpu_transpose) and the executed kernels must
     agree on the transaction traffic within a modest tolerance. *)
  List.iter
    (fun (m, n) ->
      let mem = setup ~m ~n in
      let exec = Gpu_exec.c2r mem ~m ~n in
      let model =
        Gpu_transpose.cost cfg ~algorithm:`C2r ~elt_bytes:4 ~m ~n
      in
      let et = exec.Gpu_exec.stats.Memory.weighted_bytes in
      let mt = model.Gpu_transpose.stats.Memory.weighted_bytes in
      let ratio = et /. mt in
      Alcotest.(check bool)
        (Printf.sprintf "%dx%d exec %.0f vs model %.0f (ratio %.2f)" m n et mt
           ratio)
        true
        (ratio > 0.6 && ratio < 1.8))
    [ (48, 64); (64, 48); (96, 96); (60, 45) ]

let test_r2c_matches_cost_model () =
  List.iter
    (fun (m, n) ->
      let mem = setup ~m ~n in
      let exec = Gpu_exec.r2c mem ~m ~n in
      let model = Gpu_transpose.cost cfg ~algorithm:`R2c ~elt_bytes:4 ~m ~n in
      let ratio =
        exec.Gpu_exec.stats.Memory.weighted_bytes
        /. model.Gpu_transpose.stats.Memory.weighted_bytes
      in
      Alcotest.(check bool)
        (Printf.sprintf "%dx%d r2c exec/model ratio %.2f" m n ratio)
        true
        (ratio > 0.6 && ratio < 1.8))
    [ (48, 64); (64, 48); (60, 45) ]

let test_scratch_required () =
  let mem = Memory.create cfg ~words:(6 * 7) in
  Alcotest.check_raises "needs scratch"
    (Invalid_argument "Gpu_exec: memory too small (need matrix + scratch)")
    (fun () -> ignore (Gpu_exec.c2r mem ~m:6 ~n:7))

let prop_random_shapes =
  QCheck2.Test.make ~name:"executed c2r transposes random shapes" ~count:40
    QCheck2.Gen.(pair (int_range 1 48) (int_range 1 48))
    (fun (m, n) ->
      let mem = setup ~m ~n in
      ignore (Gpu_exec.c2r mem ~m ~n);
      let ok = ref true in
      for l = 0 to (m * n) - 1 do
        if Memory.peek mem l <> (n * (l mod m)) + (l / m) then ok := false
      done;
      !ok)

let tests =
  [
    Alcotest.test_case "c2r executes the transpose" `Quick
      test_c2r_executes_transpose;
    Alcotest.test_case "r2c executes the transpose" `Quick
      test_r2c_executes_transpose;
    Alcotest.test_case "r2c inverts c2r" `Quick test_r2c_inverts_c2r;
    Alcotest.test_case "on-chip flag" `Quick test_onchip_flag;
    Alcotest.test_case "exec agrees with cost model" `Quick
      test_matches_cost_model;
    Alcotest.test_case "r2c exec agrees with cost model" `Quick
      test_r2c_matches_cost_model;
    Alcotest.test_case "scratch required" `Quick test_scratch_required;
    QCheck_alcotest.to_alcotest prop_random_shapes;
  ]
