open Xpose_simd_machine
open Xpose_simd

let cfg = Config.k20c

let test_load_unit_stride () =
  List.iter
    (fun m ->
      let mem = Memory.create cfg ~words:(64 * m) in
      for a = 0 to (64 * m) - 1 do
        Memory.poke mem a (1000 + a)
      done;
      Memory.reset mem;
      let w = Warp.create mem ~regs:m in
      Coalesced.load_unit_stride w ~base:0 ~first_struct:32;
      (* lane j must hold structure 32+j: words (32+j)*m .. +m-1 *)
      for j = 0 to 31 do
        for r = 0 to m - 1 do
          Alcotest.(check int)
            (Printf.sprintf "m=%d lane=%d word=%d" m j r)
            (1000 + ((32 + j) * m) + r)
            (Warp.get w ~reg:r ~lane:j)
        done
      done)
    [ 1; 2; 3; 4; 5; 8; 12; 16; 32 ]

let test_store_unit_stride () =
  List.iter
    (fun m ->
      let mem = Memory.create cfg ~words:(32 * m) in
      let w = Warp.create mem ~regs:m in
      for j = 0 to 31 do
        for r = 0 to m - 1 do
          Warp.set w ~reg:r ~lane:j ((j * m) + r)
        done
      done;
      Coalesced.store_unit_stride w ~base:0 ~first_struct:0;
      for a = 0 to (32 * m) - 1 do
        Alcotest.(check int) (Printf.sprintf "m=%d word %d" m a) a
          (Memory.peek mem a)
      done)
    [ 1; 2; 3; 4; 7; 8; 16; 24 ]

let test_random_bases () =
  let m = 6 in
  let n_structs = 32 in
  let perm = [| 5; 12; 0; 31; 7; 19; 2; 28; 14; 9; 23; 1; 30; 11; 4; 26;
                17; 8; 21; 3; 29; 13; 6; 25; 16; 10; 22; 15; 27; 18; 24; 20 |] in
  let mem = Memory.create cfg ~words:(n_structs * m) in
  for a = 0 to (n_structs * m) - 1 do
    Memory.poke mem a a
  done;
  Memory.reset mem;
  let w = Warp.create mem ~regs:m in
  Coalesced.load w ~struct_base:(fun s -> perm.(s) * m);
  for j = 0 to 31 do
    for r = 0 to m - 1 do
      Alcotest.(check int) "random gather" ((perm.(j) * m) + r)
        (Warp.get w ~reg:r ~lane:j)
    done
  done

let test_coalesced_beats_direct_transactions () =
  (* The headline property: cooperative access generates far fewer
     transactions than per-lane strided access for a 64-byte struct. *)
  let m = 16 (* 16 words x 4B = 64-byte struct *) in
  let mem_c = Memory.create cfg ~words:(32 * m) in
  let w = Warp.create mem_c ~regs:m in
  for j = 0 to 31 do
    for r = 0 to m - 1 do
      Warp.set w ~reg:r ~lane:j ((j * m) + r)
    done
  done;
  Coalesced.store_unit_stride w ~base:0 ~first_struct:0;
  let coalesced_tx = (Memory.stats mem_c).Memory.store_transactions in
  let mem_d = Memory.create cfg ~words:(32 * m) in
  for r = 0 to m - 1 do
    Memory.warp_store mem_d
      ~addrs:(Array.init 32 (fun j -> Some ((j * m) + r)))
      ~values:(Array.init 32 (fun j -> Some ((j * m) + r)))
  done;
  let direct_tx = (Memory.stats mem_d).Memory.store_transactions in
  Alcotest.(check int) "coalesced = minimal" (32 * m * 4 / 32) coalesced_tx;
  Alcotest.(check bool)
    (Printf.sprintf "direct (%d) >> coalesced (%d)" direct_tx coalesced_tx)
    true
    (direct_tx >= 8 * coalesced_tx);
  (* and the memory images agree *)
  for a = 0 to (32 * m) - 1 do
    Alcotest.(check int) "same image" (Memory.peek mem_c a) (Memory.peek mem_d a)
  done

let tests =
  [
    Alcotest.test_case "load unit stride" `Quick test_load_unit_stride;
    Alcotest.test_case "store unit stride" `Quick test_store_unit_stride;
    Alcotest.test_case "random bases" `Quick test_random_bases;
    Alcotest.test_case "coalesced beats direct" `Quick
      test_coalesced_beats_direct_transactions;
  ]
