open Xpose_simd_machine

let cfg = Config.k20c

let make_warp ~regs =
  let mem = Memory.create cfg ~words:(regs * cfg.Config.lanes * 4) in
  (mem, Warp.create mem ~regs)

let test_create () =
  let _, w = make_warp ~regs:4 in
  Alcotest.(check int) "lanes" 32 (Warp.lanes w);
  Alcotest.(check int) "regs" 4 (Warp.regs w);
  Alcotest.(check int) "zero" 0 (Warp.get w ~reg:3 ~lane:31);
  Alcotest.check_raises "bad regs" (Invalid_argument "Warp.create: regs")
    (fun () ->
      ignore (Warp.create (Memory.create cfg ~words:0) ~regs:0))

let fill w f =
  for r = 0 to Warp.regs w - 1 do
    for j = 0 to Warp.lanes w - 1 do
      Warp.set w ~reg:r ~lane:j (f r j)
    done
  done

let test_shfl () =
  let mem, w = make_warp ~regs:2 in
  fill w (fun r j -> (r * 100) + j);
  Memory.reset mem;
  Warp.shfl w ~reg:1 ~src:(fun j -> (j + 5) mod 32);
  for j = 0 to 31 do
    Alcotest.(check int) "rotated row" (100 + ((j + 5) mod 32))
      (Warp.get w ~reg:1 ~lane:j);
    Alcotest.(check int) "other row untouched" j (Warp.get w ~reg:0 ~lane:j)
  done;
  Alcotest.(check int) "one instruction" 1
    (Memory.stats mem).Memory.instructions

let test_rotate_dynamic () =
  let mem, w = make_warp ~regs:8 in
  fill w (fun r j -> (j * 8) + r);
  Memory.reset mem;
  Warp.rotate_dynamic w ~amount:(fun j -> j);
  for j = 0 to 31 do
    for r = 0 to 7 do
      Alcotest.(check int) "rotated"
        ((j * 8) + ((r + j) mod 8))
        (Warp.get w ~reg:r ~lane:j)
    done
  done;
  (* regs * ceil(log2 regs) = 8 * 3 selects *)
  Alcotest.(check int) "select count" 24 (Memory.stats mem).Memory.instructions

let test_rotate_negative_amount () =
  let _, w = make_warp ~regs:5 in
  fill w (fun r _ -> r);
  Warp.rotate_dynamic w ~amount:(fun _ -> -2);
  for r = 0 to 4 do
    Alcotest.(check int) "neg rotate" ((r + 3) mod 5) (Warp.get w ~reg:r ~lane:0)
  done

let test_permute_static () =
  let mem, w = make_warp ~regs:4 in
  fill w (fun r j -> (j * 4) + r);
  Memory.reset mem;
  Warp.permute_static w ~perm:(fun r -> (r + 1) mod 4);
  for j = 0 to 31 do
    for r = 0 to 3 do
      Alcotest.(check int) "renamed" ((j * 4) + ((r + 1) mod 4))
        (Warp.get w ~reg:r ~lane:j)
    done
  done;
  Alcotest.(check int) "free" 0 (Memory.stats mem).Memory.instructions;
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Warp.permute_static: perm is not a permutation")
    (fun () -> Warp.permute_static w ~perm:(fun _ -> 0))

let test_load_store_rows_roundtrip () =
  let mem, w = make_warp ~regs:3 in
  for a = 0 to (3 * 32) - 1 do
    Memory.poke mem a (a * 7)
  done;
  Memory.reset mem;
  Warp.load_rows w ~base:0;
  for r = 0 to 2 do
    for j = 0 to 31 do
      Alcotest.(check int) "loaded" (((r * 32) + j) * 7)
        (Warp.get w ~reg:r ~lane:j)
    done
  done;
  let s = Memory.stats mem in
  (* 3 rows x 128B, each four 32B sectors *)
  Alcotest.(check int) "3 coalesced loads" 12 s.Memory.load_transactions;
  (* write back shifted *)
  fill w (fun r j -> (r * 32) + j);
  Warp.store_rows w ~base:0;
  for a = 0 to 95 do
    Alcotest.(check int) "stored" a (Memory.peek mem a)
  done

let tests =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "shfl" `Quick test_shfl;
    Alcotest.test_case "dynamic rotate" `Quick test_rotate_dynamic;
    Alcotest.test_case "negative rotate" `Quick test_rotate_negative_amount;
    Alcotest.test_case "static permute" `Quick test_permute_static;
    Alcotest.test_case "load/store rows" `Quick test_load_store_rows_roundtrip;
  ]
