open Xpose_simd_machine
open Xpose_simd

let cfg = Config.k20c

let test_sane_range () =
  List.iter
    (fun (m, n) ->
      List.iter
        (fun algorithm ->
          let r = Gpu_transpose.cost cfg ~algorithm ~elt_bytes:8 ~m ~n in
          Alcotest.(check bool)
            (Printf.sprintf "%dx%d gbps=%.1f in range" m n r.Gpu_transpose.gbps)
            true
            (r.Gpu_transpose.gbps > 1.0
            && r.Gpu_transpose.gbps <= 2.0 *. cfg.Config.effective_gbps))
        [ `C2r; `R2c ])
    [ (1000, 1000); (5000, 1200); (1200, 5000); (4097, 4099) ]

let test_c2r_band_when_n_small () =
  (* Fig. 4: the C2R landscape has a high band for small n (row fits on
     chip). *)
  let narrow = Gpu_transpose.cost cfg ~algorithm:`C2r ~elt_bytes:8 ~m:20000 ~n:2000 in
  let wide = Gpu_transpose.cost cfg ~algorithm:`C2r ~elt_bytes:8 ~m:20000 ~n:20000 in
  Alcotest.(check bool) "narrow on chip" true narrow.Gpu_transpose.onchip_row_shuffle;
  Alcotest.(check bool) "wide off chip" false wide.Gpu_transpose.onchip_row_shuffle;
  Alcotest.(check bool)
    (Printf.sprintf "band: %.1f > %.1f" narrow.Gpu_transpose.gbps
       wide.Gpu_transpose.gbps)
    true
    (narrow.Gpu_transpose.gbps > wide.Gpu_transpose.gbps)

let test_r2c_band_when_m_small () =
  (* Fig. 5: mirrored band for R2C. *)
  let short = Gpu_transpose.cost cfg ~algorithm:`R2c ~elt_bytes:8 ~m:2000 ~n:20000 in
  let tall = Gpu_transpose.cost cfg ~algorithm:`R2c ~elt_bytes:8 ~m:20000 ~n:20000 in
  Alcotest.(check bool) "short on chip" true short.Gpu_transpose.onchip_row_shuffle;
  Alcotest.(check bool)
    (Printf.sprintf "band: %.1f > %.1f" short.Gpu_transpose.gbps
       tall.Gpu_transpose.gbps)
    true
    (short.Gpu_transpose.gbps > tall.Gpu_transpose.gbps)

let test_auto_heuristic () =
  let r1 = Gpu_transpose.auto cfg ~elt_bytes:8 ~m:5000 ~n:1000 in
  let r2 = Gpu_transpose.auto cfg ~elt_bytes:8 ~m:1000 ~n:5000 in
  Alcotest.(check bool) "m>n -> c2r" true (r1.Gpu_transpose.algorithm = `C2r);
  Alcotest.(check bool) "m<=n -> r2c" true (r2.Gpu_transpose.algorithm = `R2c)

let test_double_beats_float () =
  (* Table 2 shape: 64-bit elements transpose at higher GB/s than 32-bit
     (the gathers waste less of each line). *)
  let f = Gpu_transpose.auto cfg ~elt_bytes:4 ~m:9000 ~n:11000 in
  let d = Gpu_transpose.auto cfg ~elt_bytes:8 ~m:9000 ~n:11000 in
  Alcotest.(check bool)
    (Printf.sprintf "double %.1f > float %.1f" d.Gpu_transpose.gbps
       f.Gpu_transpose.gbps)
    true
    (d.Gpu_transpose.gbps > f.Gpu_transpose.gbps)

let test_sung_shapes () =
  (* nice dimensions: decent tiles; prime dimensions: degenerate tiles *)
  let nice = Sung_gpu.cost cfg ~elt_bytes:4 ~m:7200 ~n:1800 in
  Alcotest.(check (pair int int)) "paper tile" (32, 72) nice.Sung_gpu.tile;
  let ugly = Sung_gpu.cost cfg ~elt_bytes:4 ~m:7919 ~n:7907 in
  Alcotest.(check (pair int int)) "degenerate tile" (1, 1) ugly.Sung_gpu.tile;
  Alcotest.(check bool)
    (Printf.sprintf "nice %.1f > ugly %.1f" nice.Sung_gpu.gbps ugly.Sung_gpu.gbps)
    true
    (nice.Sung_gpu.gbps > 4.0 *. ugly.Sung_gpu.gbps)

let test_sung_vs_c2r_float () =
  (* Fig. 6 / Table 2 ordering on awkward sizes: C2R(float) > Sung(float). *)
  let mn = [ (1234, 5678); (4099, 9013); (2500, 7907) ] in
  List.iter
    (fun (m, n) ->
      let c = Gpu_transpose.auto cfg ~elt_bytes:4 ~m ~n in
      let s = Sung_gpu.cost cfg ~elt_bytes:4 ~m ~n in
      Alcotest.(check bool)
        (Printf.sprintf "%dx%d c2r %.1f > sung %.1f" m n c.Gpu_transpose.gbps
           s.Sung_gpu.gbps)
        true
        (c.Gpu_transpose.gbps > s.Sung_gpu.gbps))
    mn

let test_sung_tile_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sung_gpu.cost ~tile:(3, 3) cfg ~elt_bytes:4 ~m:10 ~n:10);
       false
     with Xpose_baselines.Sung.Tile_mismatch _ -> true)

let test_aos_costs () =
  (* Fig. 7 regime: specialized conversion well above the general one,
     and in a plausible band. *)
  let spec = Aos.cost_specialized cfg ~elt_bytes:8 ~structs:1_000_000 ~fields:8 in
  let gen = Aos.cost_general cfg ~elt_bytes:8 ~structs:1_000_000 ~fields:8 in
  Alcotest.(check bool)
    (Printf.sprintf "specialized %.1f > general %.1f" spec.Aos.gbps gen.Aos.gbps)
    true
    (spec.Aos.gbps > 3.0 *. gen.Aos.gbps);
  Alcotest.(check bool)
    (Printf.sprintf "specialized band: %.1f" spec.Aos.gbps)
    true
    (spec.Aos.gbps > 10.0 && spec.Aos.gbps < 80.0);
  Alcotest.(check (float 1e-9)) "full utilization" 1.0 spec.Aos.utilization

let test_aos_conversion_correct () =
  let module A = Aos.Make (Xpose_core.Storage.Int_elt) in
  let module S = Xpose_core.Storage.Int_elt in
  List.iter
    (fun (structs, fields) ->
      let buf = S.create (structs * fields) in
      Xpose_core.Storage.fill_iota (module S) buf;
      A.aos_to_soa ~structs ~fields buf;
      (* SoA: field f of struct s at f*structs + s, holding s*fields + f *)
      for s = 0 to structs - 1 do
        for f = 0 to fields - 1 do
          Alcotest.(check int) "soa layout"
            ((s * fields) + f)
            (S.get buf ((f * structs) + s))
        done
      done;
      A.soa_to_aos ~structs ~fields buf;
      for l = 0 to (structs * fields) - 1 do
        Alcotest.(check int) "back to aos" l (S.get buf l)
      done)
    [ (100, 3); (64, 8); (37, 5); (1000, 2); (50, 31) ]

let tests =
  [
    Alcotest.test_case "sane throughput range" `Quick test_sane_range;
    Alcotest.test_case "fig4 band (C2R, small n)" `Quick test_c2r_band_when_n_small;
    Alcotest.test_case "fig5 band (R2C, small m)" `Quick test_r2c_band_when_m_small;
    Alcotest.test_case "auto heuristic" `Quick test_auto_heuristic;
    Alcotest.test_case "table2: double > float" `Quick test_double_beats_float;
    Alcotest.test_case "sung tiles & degradation" `Quick test_sung_shapes;
    Alcotest.test_case "fig6: c2r > sung (float)" `Quick test_sung_vs_c2r_float;
    Alcotest.test_case "sung tile mismatch" `Quick test_sung_tile_mismatch;
    Alcotest.test_case "fig7: aos cost model" `Quick test_aos_costs;
    Alcotest.test_case "aos conversion correct" `Quick test_aos_conversion_correct;
  ]
