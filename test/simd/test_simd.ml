let () =
  Alcotest.run "xpose_simd"
    [
      ("memory", Suite_memory.tests);
      ("warp", Suite_warp.tests);
      ("reg_transpose", Suite_reg_transpose.tests);
      ("coalesced", Suite_coalesced.tests);
      ("access", Suite_access.tests);
      ("gpu_cost", Suite_gpu_cost.tests);
      ("cpu_simd", Suite_cpu_simd.tests);
      ("gpu_exec", Suite_gpu_exec.tests);
    ]
