(* Grounding the symbolic models in reality: every pass gather map must
   describe what the real kernel does to a concrete buffer, and the
   composed engine models must describe the real engines end to end. The
   driver separately proves model = specification, so together these pin
   engine = model = specification. *)

open Xpose_core
open Xpose_check
module S = Storage.Float64

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let shapes = [ (3, 5); (7, 13); (16, 16); (31, 33); (48, 36); (97, 89) ]

(* Run [run] on an iota buffer and check every slot against the gather
   map: after the pass, buf.(l) = iota.(map l) = map l. *)
let check_against_model ~m ~n name model run =
  let size = m * n in
  if size <> Perm.size model then
    Alcotest.failf "%s %dx%d: model size %d" name m n (Perm.size model);
  let buf = iota_buf size in
  run buf;
  for l = 0 to size - 1 do
    let expected = float_of_int (Perm.apply model l) in
    if S.get buf l <> expected then
      Alcotest.failf "%s %dx%d: slot %d holds %g, model says %g" name m n l
        (S.get buf l) expected
  done

let test_pass_models_match_kernels () =
  List.iter
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let tmp = S.create (Plan.scratch_elements p) in
      let amount j = j in
      check_against_model ~m ~n "rotate_columns"
        (Spec.Passes.rotate_columns p ~amount)
        (fun buf ->
          Kernels_f64.Phases.rotate_columns p buf ~tmp ~amount ~lo:0 ~hi:n);
      check_against_model ~m ~n "row_shuffle_gather"
        (Spec.Passes.row_shuffle_gather p)
        (fun buf -> Kernels_f64.Phases.row_shuffle_gather p buf ~tmp ~lo:0 ~hi:m);
      (* scatter is a different implementation of the same permutation *)
      check_against_model ~m ~n "row_shuffle_scatter"
        (Spec.Passes.row_shuffle_gather p)
        (fun buf ->
          Kernels_f64.Phases.row_shuffle_scatter p buf ~tmp ~lo:0 ~hi:m);
      check_against_model ~m ~n "row_shuffle_ungather"
        (Spec.Passes.row_shuffle_ungather p)
        (fun buf ->
          Kernels_f64.Phases.row_shuffle_ungather p buf ~tmp ~lo:0 ~hi:m);
      check_against_model ~m ~n "col_shuffle_gather"
        (Spec.Passes.col_shuffle_gather p)
        (fun buf -> Kernels_f64.Phases.col_shuffle_gather p buf ~tmp ~lo:0 ~hi:n);
      check_against_model ~m ~n "col_shuffle_ungather"
        (Spec.Passes.col_shuffle_ungather p)
        (fun buf ->
          Kernels_f64.Phases.col_shuffle_ungather p buf ~tmp ~lo:0 ~hi:n);
      check_against_model ~m ~n "permute_rows"
        (Spec.Passes.permute_rows p ~index:(Plan.q p))
        (fun buf ->
          Kernels_f64.Phases.permute_rows p buf ~tmp ~index:(Plan.q p) ~lo:0
            ~hi:n))
    shapes

let compose_model passes =
  match passes with
  | [] -> None
  | (_, first) :: _ ->
      Some (Perm.pipeline ~size:(Perm.size first) (List.map snd passes))

let test_engine_models_match_engines () =
  (* End to end: the composed model of each engine applied to iota must
     equal the engine's real output. *)
  List.iter
    (fun (m, n) ->
      let check name engine run =
        match compose_model (Spec.transpose_model engine ~m ~n) with
        | None -> ()
        | Some net -> check_against_model ~m ~n name net run
      in
      check "kernels engine" Spec.Kernels (fun buf ->
          Kernels_f64.transpose ~m ~n buf);
      check "fused engine" Spec.Fused (fun buf ->
          Xpose_cpu.Fused_f64.transpose ~m ~n buf);
      check "decomposed engine" Spec.Decomposed (fun buf ->
          if m > n then
            let p = Plan.make ~m ~n in
            let tmp = S.create (Plan.scratch_elements p) in
            Kernels_f64.c2r ~variant:Algo.C2r_decomposed p buf ~tmp
          else
            let p = Plan.make ~m:n ~n:m in
            let tmp = S.create (Plan.scratch_elements p) in
            Kernels_f64.r2c ~variant:Algo.R2c_decomposed p buf ~tmp))
    shapes

let test_transpose_target_matches_reality () =
  List.iter
    (fun (m, n) ->
      check_against_model ~m ~n "transpose target"
        (Spec.transpose_target ~m ~n) (fun buf ->
          Kernels_f64.transpose ~m ~n buf))
    shapes

let test_permute_target_matches_reality () =
  let module SI = Storage.Int_elt in
  let module Nd = Tensor_nd.Make (SI) in
  List.iter
    (fun (dims, perm) ->
      let total = Array.fold_left ( * ) 1 dims in
      let target = Spec.permute_target ~dims ~perm in
      let buf = SI.create total in
      for i = 0 to total - 1 do
        SI.set buf i (SI.of_int i)
      done;
      Nd.permute ~dims ~perm buf;
      for l = 0 to total - 1 do
        let expected = Perm.apply target l in
        if SI.to_int (SI.get buf l) <> expected then
          Alcotest.failf "permute target: slot %d holds %d, target says %d" l
            (SI.to_int (SI.get buf l))
            expected
      done)
    [
      ([| 4; 5; 6 |], [| 2; 0; 1 |]);
      ([| 2; 3; 4 |], [| 0; 2; 1 |]);
      ([| 3; 4; 5; 6 |], [| 1; 3; 0; 2 |]);
    ]

let test_probes_in_range () =
  List.iter
    (fun (m, n) ->
      let probes = Spec.probes ~m ~n () in
      Alcotest.(check bool)
        (Printf.sprintf "probes exist %dx%d" m n)
        true
        (List.length probes > 0);
      List.iter
        (fun l ->
          if l < 0 || l >= m * n then
            Alcotest.failf "probe %d outside [0, %d) for %dx%d" l (m * n) m n)
        probes)
    ((1024, 768) :: shapes)

let test_verify_rejects_broken_model () =
  (* Sanity of the verifier itself: a wrong pipeline must not prove.
     Drop the final pass of the kernels model and verify. *)
  let m = 48 and n = 36 in
  let passes = Spec.transpose_model Spec.Kernels ~m ~n in
  let truncated = List.filteri (fun i _ -> i < List.length passes - 1) passes in
  match compose_model truncated with
  | None -> Alcotest.fail "model is not empty for 48x36"
  | Some net -> (
      match Perm.verify ~target:(Spec.transpose_target ~m ~n) net with
      | Perm.Mismatch _ -> ()
      | Perm.Proved _ -> Alcotest.fail "truncated pipeline proved")

let tests =
  [
    Alcotest.test_case "pass models match kernels" `Quick
      test_pass_models_match_kernels;
    Alcotest.test_case "engine models match engines" `Quick
      test_engine_models_match_engines;
    Alcotest.test_case "transpose target matches reality" `Quick
      test_transpose_target_matches_reality;
    Alcotest.test_case "permute target matches reality" `Quick
      test_permute_target_matches_reality;
    Alcotest.test_case "probes in range" `Quick test_probes_in_range;
    Alcotest.test_case "verifier rejects broken model" `Quick
      test_verify_rejects_broken_model;
  ]
