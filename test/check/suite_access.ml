(* Cross-validation of the symbolic access summaries (Xpose_core.Access)
   against reality: run the checked-access twins with a trace recorder
   installed and diff the recorded index set against the concretized
   summary. [exact] summaries must match set-for-set; superset summaries
   must contain the trace. This is what keeps the Bounds/Alias proof
   obligations honest: a summary that drifts from the code fails here
   long before a wrong certificate could be issued. *)

open Xpose_core

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

(* Map a checked access (who/what) to the summary's region name. *)
let region_of ~who ~what =
  if contains who "Kernels_f64" then
    if contains what "scratch" then "tmp" else "matrix"
  else if contains what "line" then "line"
  else if contains what "head" then "head"
  else if contains what "block" then "block"
  else "matrix"

let kind_of what : Access.kind =
  if contains what "write" then Write else Read

let with_trace f =
  let events = ref [] in
  Checked_access.set_recorder
    (Some
       (fun ~who ~what ~len:_ i ->
         events :=
           {
             Access.e_region = region_of ~who ~what;
             e_kind = kind_of what;
             e_index = i;
           }
           :: !events));
  Fun.protect ~finally:(fun () -> Checked_access.set_recorder None) f;
  List.sort_uniq compare !events

let pp_events evs =
  let shown = List.filteri (fun i _ -> i < 8) evs in
  let suffix = if List.length evs > 8 then ", ..." else "" in
  String.concat ", "
    (List.map
       (fun (e : Access.event) ->
         Printf.sprintf "%s %s[%d]" e.e_region
           (match e.e_kind with Read -> "r" | Write -> "w")
           e.e_index)
       shown)
  ^ suffix

let check_exact ~msg summary env trace =
  let want = Access.concretize ~env summary in
  if want <> trace then
    Alcotest.failf "%s: summary %s disagrees with trace\n summary-only: %s\n trace-only: %s"
      msg summary.Access.pass
      (pp_events (List.filter (fun e -> not (List.mem e trace)) want))
      (pp_events (List.filter (fun e -> not (List.mem e want)) trace))

let check_superset ~msg summary env trace =
  let want = Access.concretize ~env summary in
  let missing = List.filter (fun e -> not (List.mem e want)) trace in
  if missing <> [] then
    Alcotest.failf "%s: trace escapes summary %s: %s" msg
      summary.Access.pass (pp_events missing)

(* -- the row/column kernel phases ---------------------------------------- *)

let f64 len = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len

let fill buf =
  for i = 0 to Bigarray.Array1.dim buf - 1 do
    Bigarray.Array1.set buf i (float_of_int i)
  done

type axis = Rows | Cols

let kernel_cases (p : Plan.t) =
  let module K = Kernels_f64.Checked.Phases in
  let open Access.Passes in
  [
    ( rotate_pre,
      Cols,
      fun buf ~tmp ~lo ~hi ->
        K.rotate_columns p buf ~tmp ~amount:(Plan.rotate_amount p) ~lo ~hi );
    ( rotate_post,
      Cols,
      fun buf ~tmp ~lo ~hi ->
        K.rotate_columns p buf ~tmp
          ~amount:(fun j -> -Plan.rotate_amount p j)
          ~lo ~hi );
    ( col_rotate,
      Cols,
      fun buf ~tmp ~lo ~hi ->
        K.rotate_columns p buf ~tmp ~amount:(fun j -> j) ~lo ~hi );
    ( col_unrotate,
      Cols,
      fun buf ~tmp ~lo ~hi ->
        K.rotate_columns p buf ~tmp ~amount:(fun j -> -j) ~lo ~hi );
    (row_shuffle_gather, Rows, K.row_shuffle_gather p);
    (row_shuffle_scatter, Rows, K.row_shuffle_scatter p);
    (row_shuffle_ungather, Rows, K.row_shuffle_ungather p);
    (col_shuffle_gather, Cols, K.col_shuffle_gather p);
    (col_shuffle_ungather, Cols, K.col_shuffle_ungather p);
    ( row_permute_q,
      Cols,
      fun buf ~tmp ~lo ~hi -> K.permute_rows p buf ~tmp ~index:(Plan.q p) ~lo ~hi
    );
    ( row_permute_q_inv,
      Cols,
      fun buf ~tmp ~lo ~hi ->
        K.permute_rows p buf ~tmp ~index:(Plan.q_inv p) ~lo ~hi );
  ]

let check_kernel_phases ~m ~n ~lo_frac ~hi_frac =
  let p = Plan.make ~m ~n in
  let buf = f64 (m * n) and tmp = f64 (max m n) in
  List.iter
    (fun (summary, axis, run) ->
      let full = match axis with Rows -> m | Cols -> n in
      let lo = min full (lo_frac * full / 4)
      and hi = max 0 (hi_frac * full / 4) in
      let lo = min lo hi in
      fill buf;
      fill tmp;
      let trace = with_trace (fun () -> run buf ~tmp ~lo ~hi) in
      let env = ("lo", lo) :: ("hi", hi) :: Access.env_of_plan p in
      check_exact
        ~msg:(Printf.sprintf "m=%d n=%d lo=%d hi=%d" m n lo hi)
        summary env trace)
    (kernel_cases p)

let test_kernel_phases_grid () =
  List.iter
    (fun (m, n) ->
      check_kernel_phases ~m ~n ~lo_frac:0 ~hi_frac:4;
      check_kernel_phases ~m ~n ~lo_frac:1 ~hi_frac:3)
    [
      (1, 1); (1, 7); (7, 1); (2, 2); (3, 5); (5, 3); (4, 6); (6, 4);
      (8, 12); (12, 8); (9, 9); (7, 11); (16, 10);
    ]

(* -- fused panel engine: trace inclusion --------------------------------
   The panel summaries are proven supersets (the cycle structure visits
   a subset of the summarized rows), so the check here is inclusion:
   every access the checked fused engine performs must appear in the
   union of the concretized panel summaries over the panels of the
   sweep (plus the kernel summaries for the row shuffles and the
   rotate fallback). *)

let fused_allowed (p : Plan.t) ~width ~block_rows ~with_row_shuffles =
  let m = p.m and n = p.n in
  let base = Access.env_of_plan p in
  let tbl = Hashtbl.create 4096 in
  let add env s =
    List.iter
      (fun e -> Hashtbl.replace tbl e ())
      (Access.concretize ~env s)
  in
  let groups = (n + width - 1) / width in
  for g = 0 to groups - 1 do
    let lo = g * width in
    let w = min width (n - lo) in
    let fenv =
      ("w", w) :: ("lo", lo) :: ("block_rows", block_rows)
      :: ("maxres", max 0 (min w m - 1))
      :: ("bk", 8) :: base
    in
    List.iter (add fenv) Xpose_cpu.Fused.Summary.panel_passes;
    (* fine_mk is parametric in the tier's block edge; panel_passes
       concretized it at bk=8, cover the 16-row movers too. *)
    add (("bk", 16) :: fenv) Xpose_cpu.Fused.Summary.fine_mk;
    add
      (("lo", lo) :: ("hi", lo + w) :: base)
      (Access.Passes.rotate_any ())
  done;
  if with_row_shuffles then begin
    let renv = ("lo", 0) :: ("hi", m) :: base in
    add renv Access.Passes.row_shuffle_gather;
    add renv Access.Passes.row_shuffle_ungather
  end;
  tbl

let check_included ~msg allowed trace =
  List.iter
    (fun (e : Access.event) ->
      if not (Hashtbl.mem allowed e) then
        Alcotest.failf "%s: access %s escapes the summaries" msg
          (pp_events [ e ]))
    trace

let check_fused ~m ~n ~width ~block_rows =
  let module FC = Xpose_cpu.Fused_f64.Checked in
  let p = Plan.make ~m ~n in
  let buf = f64 (m * n) in
  let msg = Printf.sprintf "fused m=%d n=%d w=%d br=%d" m n width block_rows in
  let allowed = fused_allowed p ~width ~block_rows ~with_row_shuffles:true in
  let runs =
    [
      (fun () ->
        FC.rotate_columns ~panel_width:width ~block_rows p buf
          ~amount:(Plan.rotate_amount p));
      (fun () ->
        FC.rotate_columns ~panel_width:width ~block_rows p buf
          ~amount:(fun j -> j));
      (fun () ->
        let cycles = Xpose_cpu.Fused_f64.cycles ~m ~index:(Plan.q p) in
        FC.permute_cols ~panel_width:width p buf ~cycles);
      (fun () -> FC.c2r ~panel_width:width ~block_rows p buf);
      (fun () -> FC.r2c ~panel_width:width ~block_rows p buf);
      (fun () ->
        FC.c2r ~panel_width:width ~block_rows ~tier:Tune_params.Mk8 p buf);
      (fun () ->
        FC.c2r ~panel_width:width ~block_rows ~tier:Tune_params.Mk16 p buf);
      (fun () ->
        FC.r2c ~panel_width:width ~block_rows ~tier:Tune_params.Mk16 p buf);
    ]
  in
  List.iter
    (fun run ->
      fill buf;
      check_included ~msg allowed (with_trace run))
    runs

let test_fused_grid () =
  List.iter
    (fun (m, n) ->
      List.iter
        (fun width ->
          check_fused ~m ~n ~width ~block_rows:3;
          check_fused ~m ~n ~width ~block_rows:64)
        [ 2; 3; 8; 16 ])
    [ (2, 2); (3, 5); (5, 3); (4, 6); (8, 12); (9, 9); (7, 11); (16, 10) ]

let test_fused_random =
  QCheck.Test.make ~count:40 ~name:"random shapes: fused traces included"
    QCheck.(
      make
        ~print:(fun ((m, n), (w, br)) ->
          Printf.sprintf "m=%d n=%d width=%d block_rows=%d" m n w br)
      QCheck.Gen.(
        pair
          (pair (int_range 1 20) (int_range 1 20))
          (pair (int_range 1 17) (int_range 1 8))))
    (fun ((m, n), (width, block_rows)) ->
      check_fused ~m ~n ~width ~block_rows;
      true)

let shape_gen =
  QCheck.Gen.(pair (int_range 1 24) (int_range 1 24))

let test_kernel_phases_random =
  QCheck.Test.make ~count:60 ~name:"random shapes: kernel phase traces"
    QCheck.(
      make
        ~print:(fun ((m, n), (lf, hf)) ->
          Printf.sprintf "m=%d n=%d lo_frac=%d hi_frac=%d" m n lf hf)
        QCheck.Gen.(pair shape_gen (pair (int_range 0 2) (int_range 2 4))))
    (fun ((m, n), (lo_frac, hi_frac)) ->
      check_kernel_phases ~m ~n ~lo_frac ~hi_frac;
      true)

let tests =
  [
    Alcotest.test_case "kernel phase traces = summaries (grid)" `Quick
      test_kernel_phases_grid;
    QCheck_alcotest.to_alcotest test_kernel_phases_random;
    Alcotest.test_case "fused engine traces included in summaries (grid)"
      `Quick test_fused_grid;
    QCheck_alcotest.to_alcotest test_fused_random;
  ]
