(* Parametric alias certificates (Xpose_check.Alias): the full grid is
   cheap (a few seconds), so it runs whole -- every split family and
   barrier lift must prove, the seeded splits must be refuted with a
   concrete overlap witness, and the witness searches must agree with
   the concrete split functions. *)

open Xpose_check

let subjects results = List.map (fun (r : Alias.result) -> r.subject) results

let test_grid_proves () =
  let results = Alias.run () in
  List.iter
    (fun (r : Alias.result) ->
      if not r.Alias.proved then
        Alcotest.failf "%s not proved: %s" r.Alias.subject r.Alias.detail)
    results;
  List.iter
    (fun s ->
      if not (List.mem s (subjects results)) then
        Alcotest.failf "certificate %s missing" s)
    [
      "split/pool";
      "split/window";
      "barrier/row-chunks";
      "barrier/column-chunks";
      "barrier/panel-groups";
      "barrier/batch-slices";
      "barrier/block-slots";
      "barrier/ooc-windows";
      "barrier/scratch-slots";
      "regions/workspace-matrix";
    ]

let test_seeded_refuted () =
  let results = Alias.run ~seed_race:true () in
  List.iter
    (fun subject ->
      match
        List.find_opt (fun (r : Alias.result) -> r.subject = subject) results
      with
      | None -> Alcotest.failf "seeded certificate %s missing" subject
      | Some r ->
          Alcotest.(check bool) (subject ^ " not proved") false r.Alias.proved;
          if r.Alias.counterexample = None then
            Alcotest.failf "%s not refuted: %s" subject r.Alias.detail)
    [ "seeded/off-by-one-split"; "seeded/overlapping-windows" ]

let test_split_witness_search () =
  Alcotest.(check bool)
    "pool split clean" true
    (Alias.split_counterexample Footprint.pool_split = None);
  match Alias.split_counterexample Footprint.off_by_one_split with
  | None -> Alcotest.fail "off-by-one split not refuted"
  | Some cx ->
      Alcotest.(check string)
        "smallest witness" "lo=0 hi=2 lanes=2: chunk 0 [0,2) overlaps chunk 1 [1,2) at index 1"
        cx

let test_window_witness_search () =
  Alcotest.(check bool)
    "window split clean" true
    (Alias.window_counterexample Xpose_ooc.Window.split = None);
  match Alias.window_counterexample Xpose_ooc.Window.overlapping_split with
  | None -> Alcotest.fail "overlapping windows not refuted"
  | Some cx ->
      Alcotest.(check string)
        "smallest witness"
        "total=2 per=1: window 0 [0,2) overlaps window 1 [1,2) at index 1" cx

let tests =
  [
    Alcotest.test_case "grid proves" `Quick test_grid_proves;
    Alcotest.test_case "seeded refuted" `Quick test_seeded_refuted;
    Alcotest.test_case "split witness search" `Quick test_split_witness_search;
    Alcotest.test_case "window witness search" `Quick
      test_window_witness_search;
  ]
