(* Parametric bounds certificates (Xpose_check.Bounds): a positive
   certificate on a real kernel summary, the seeded negative refuted
   with a concrete witness, and the counterexample search agreeing with
   the prover. The full certificate grid (~90s) is exercised by the CI
   prove-bounds stage, not here. *)

open Xpose_core
open Xpose_check

let find_pass name =
  match
    List.find_opt
      (fun (s : Access.summary) -> s.pass = name)
      Access.Passes.all_pipeline_passes
  with
  | Some s -> s
  | None -> Alcotest.failf "pipeline pass %s missing" name

let test_rotate_pre_proved () =
  match Bounds.certify_summary (find_pass "rotate_pre") with
  | Ok n -> Alcotest.(check bool) "obligations" true (n > 0)
  | Error e -> Alcotest.failf "rotate_pre not certified: %s" e

let test_certify_labels () =
  let r = Bounds.certify ~subject:"test/rotate_pre" (find_pass "rotate_pre") in
  Alcotest.(check string) "subject" "test/rotate_pre" r.Bounds.subject;
  Alcotest.(check string) "pass" "rotate_pre" r.Bounds.pass;
  Alcotest.(check bool) "proved" true r.Bounds.proved;
  Alcotest.(check bool) "no counterexample" true
    (r.Bounds.counterexample = None)

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

let test_seeded_refuted () =
  let r = Bounds.seeded_result () in
  Alcotest.(check string) "subject" "seeded/rotate-oob" r.Bounds.subject;
  Alcotest.(check bool) "not proved" false r.Bounds.proved;
  match r.Bounds.counterexample with
  | None -> Alcotest.fail "seeded summary not refuted"
  | Some cx ->
      Alcotest.(check bool) "smallest witness" true (contains cx "m=2 n=2")

let test_counterexample_search () =
  Alcotest.(check bool)
    "clean pass has no witness" true
    (Bounds.find_counterexample (find_pass "rotate_pre") = None);
  Alcotest.(check bool)
    "seeded pass has a witness" true
    (Bounds.find_counterexample
       (Access.Passes.seeded_oob_rotate Access.Ix.rotate_amount)
    <> None)

let tests =
  [
    Alcotest.test_case "rotate_pre proved" `Quick test_rotate_pre_proved;
    Alcotest.test_case "certify labels" `Quick test_certify_labels;
    Alcotest.test_case "seeded refuted" `Quick test_seeded_refuted;
    Alcotest.test_case "counterexample search" `Quick
      test_counterexample_search;
  ]
