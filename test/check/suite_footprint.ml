(* The race analyzer's overlap algebra, checked against brute force, and
   the barrier models' behaviour under the real and the seeded split. *)

open Xpose_check
open Footprint

let atom_indices (a : atom) =
  List.concat
    (List.init (max 0 a.count) (fun k ->
         List.init (max 0 a.width) (fun w -> a.base + (k * a.stride) + w)))

let member l a = List.mem l (atom_indices a)

let gen_atom =
  QCheck2.Gen.(
    let* base = int_range 0 30 in
    let* width = int_range 0 6 in
    let* stride = int_range 1 9 in
    let* count = int_range 1 6 in
    return { base; width; stride; count })

let print_atom a =
  Printf.sprintf "{base=%d; width=%d; stride=%d; count=%d}" a.base a.width
    a.stride a.count

let prop_overlap_exact =
  (* overlap = brute-force set intersection: Some w is a genuine shared
     index, None means the materialized sets are disjoint. *)
  QCheck2.Test.make ~name:"overlap matches brute force" ~count:2000
    ~print:(fun (a, b) -> print_atom a ^ " vs " ^ print_atom b)
    QCheck2.Gen.(pair gen_atom gen_atom)
    (fun (a, b) ->
      let brute =
        List.exists (fun l -> member l b) (atom_indices a)
      in
      match overlap a b with
      | Some w -> brute && member w a && member w b
      | None -> not brute)

let prop_overlap_symmetric =
  QCheck2.Test.make ~name:"overlap is symmetric in emptiness" ~count:1000
    QCheck2.Gen.(pair gen_atom gen_atom)
    (fun (a, b) -> overlap a b = None = (overlap b a = None))

let test_constructors () =
  Alcotest.(check bool)
    "interval membership" true
    (member 7 (interval ~lo:5 ~hi:9) && not (member 9 (interval ~lo:5 ~hi:9)));
  (* columns [1, 3) of a 2x4 matrix: indices 1, 2, 5, 6 *)
  let c = columns ~m:2 ~n:4 ~lo:1 ~hi:3 in
  Alcotest.(check (list int)) "columns atom" [ 1; 2; 5; 6 ] (atom_indices c);
  (* slots [1, 2) of 3 reps of width-4 blocks: 1, 5, 9 *)
  let b = block_slots ~reps:3 ~block:4 ~lo:1 ~hi:2 in
  Alcotest.(check (list int)) "block_slots atom" [ 1; 5; 9 ] (atom_indices b)

let test_adjacent_columns_disjoint () =
  (* The panel split's critical case: column ranges that touch but do
     not overlap, with witness checks one column over. *)
  let a = columns ~m:97 ~n:89 ~lo:0 ~hi:16 in
  let b = columns ~m:97 ~n:89 ~lo:16 ~hi:32 in
  Alcotest.(check bool) "adjacent panels disjoint" true (overlap a b = None);
  let b' = columns ~m:97 ~n:89 ~lo:15 ~hi:32 in
  match overlap a b' with
  | Some w -> Alcotest.(check bool) "witness in both" true (member w a)
  | None -> Alcotest.fail "one-column overlap missed"

let test_scratch_conflict () =
  let fp = [ interval ~lo:0 ~hi:10 ] in
  let barrier =
    {
      name = "b";
      chunks =
        [
          { id = 0; writes = fp; reads = fp; scratch = 7 };
          { id = 1; writes = [ interval ~lo:10 ~hi:20 ]; reads = []; scratch = 7 };
        ];
    }
  in
  match check_barrier barrier with
  | Some { kind = Scratch_shared; index = 7; _ } -> ()
  | Some c -> Alcotest.failf "wrong conflict: %s" (kind_name c.kind)
  | None -> Alcotest.fail "shared scratch missed"

let test_conflict_pair_order () =
  (* Two overlapping pairs: (0,2) and (1,2). The reported conflict must
     be (0,2) — the same deterministic order Pool reports failures in. *)
  let w lo hi = [ interval ~lo ~hi ] in
  let barrier =
    {
      name = "b";
      chunks =
        [
          { id = 2; writes = w 5 15; reads = []; scratch = 2 };
          { id = 0; writes = w 0 6; reads = []; scratch = 0 };
          { id = 1; writes = w 10 20; reads = []; scratch = 1 };
        ];
    }
  in
  match check_barrier barrier with
  | Some { chunk_a = 0; chunk_b = 2; kind = Write_write; _ } -> ()
  | Some c -> Alcotest.failf "wrong pair (%d, %d)" c.chunk_a c.chunk_b
  | None -> Alcotest.fail "overlap missed"

let test_write_read_conflict () =
  let barrier =
    {
      name = "b";
      chunks =
        [
          { id = 0; writes = [ interval ~lo:0 ~hi:10 ]; reads = []; scratch = 0 };
          {
            id = 1;
            writes = [ interval ~lo:20 ~hi:30 ];
            reads = [ interval ~lo:8 ~hi:12 ];
            scratch = 1;
          };
        ];
    }
  in
  match check_barrier barrier with
  | Some { kind = Write_read; _ } -> ()
  | Some c -> Alcotest.failf "wrong kind: %s" (kind_name c.kind)
  | None -> Alcotest.fail "write/read overlap missed"

let test_pool_split_is_chunk_bounds () =
  for k = 0 to 4 do
    Alcotest.(check (pair int int))
      (Printf.sprintf "chunk %d" k)
      (Xpose_cpu.Pool.chunk_bounds ~lo:3 ~hi:45 ~chunks:5 k)
      (pool_split ~lo:3 ~hi:45 ~chunks:5 k)
  done

let engines = Spec.all_engines

let test_real_split_proves_seeded_split_detected () =
  List.iter
    (fun engine ->
      List.iter
        (fun (m, n) ->
          let name =
            Printf.sprintf "%s %dx%d" (Spec.engine_name engine) m n
          in
          let clean =
            check (transpose_barriers ~engine ~lanes:3 ~m ~n ())
          in
          Alcotest.(check bool) (name ^ " clean") true (clean = None);
          let seeded =
            check
              (transpose_barriers ~split:off_by_one_split ~engine ~lanes:3 ~m
                 ~n ())
          in
          match seeded with
          | Some { kind = Write_write; _ } -> ()
          | Some c ->
              Alcotest.failf "%s: seeded split gave %s" name (kind_name c.kind)
          | None -> Alcotest.failf "%s: seeded split not detected" name)
        [ (48, 36); (97, 89); (33, 31) ])
    engines

let test_batch_barriers_seeded () =
  (match check (batch_barriers ~lanes:3 ~m:48 ~n:36 ~nb:7 ()) with
  | None -> ()
  | Some _ -> Alcotest.fail "batch clean split flagged");
  match
    check (batch_barriers ~split:off_by_one_split ~lanes:3 ~m:48 ~n:36 ~nb:7 ())
  with
  | Some { kind = Write_write; _ } -> ()
  | _ -> Alcotest.fail "batch seeded split not detected"

let test_permute_barriers_seeded () =
  let plan =
    Xpose_permute.Permute.plan ~dims:[| 4; 5; 6 |] ~perm:[| 2; 0; 1 |] ()
  in
  (match check (permute_barriers ~lanes:3 plan ()) with
  | None -> ()
  | Some _ -> Alcotest.fail "permute clean split flagged");
  match check (permute_barriers ~split:off_by_one_split ~lanes:3 plan ()) with
  | Some _ -> ()
  | None -> Alcotest.fail "permute seeded split not detected"

let tests =
  [
    Alcotest.test_case "atom constructors" `Quick test_constructors;
    Alcotest.test_case "adjacent columns disjoint" `Quick
      test_adjacent_columns_disjoint;
    Alcotest.test_case "shared scratch conflict" `Quick test_scratch_conflict;
    Alcotest.test_case "conflict pair order" `Quick test_conflict_pair_order;
    Alcotest.test_case "write/read conflict" `Quick test_write_read_conflict;
    Alcotest.test_case "pool_split = Pool.chunk_bounds" `Quick
      test_pool_split_is_chunk_bounds;
    Alcotest.test_case "real split proves, seeded split detected" `Quick
      test_real_split_proves_seeded_split_detected;
    Alcotest.test_case "batch barriers seeded" `Quick test_batch_barriers_seeded;
    Alcotest.test_case "permute barriers seeded" `Quick
      test_permute_barriers_seeded;
    QCheck_alcotest.to_alcotest prop_overlap_exact;
    QCheck_alcotest.to_alcotest prop_overlap_symmetric;
  ]
