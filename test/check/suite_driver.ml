(* The [xpose check] driver: grid assembly, seeded-negative semantics,
   shadow runs, and report rendering. Small grids keep this fast. *)

open Xpose_check

let shapes = [ (3, 5); (16, 16); (48, 36) ]
let permutes = [ ([| 4; 5; 6 |], [| 2; 0; 1 |]) ]
let lanes = [ 2; 3 ]

let test_clean_run_ok () =
  let r = Driver.run ~shapes ~permutes ~lanes () in
  Alcotest.(check bool) "ok" true (Driver.ok r);
  Alcotest.(check int) "no violations" 0 r.Driver.violations;
  Alcotest.(check int) "no detections" 0 r.Driver.detections;
  Alcotest.(check int) "entry count" r.Driver.checked
    (List.length r.Driver.entries);
  Alcotest.(check bool) "plan entries present" true
    (List.exists (fun e -> e.Driver.check = "plan") r.Driver.entries);
  Alcotest.(check bool) "race entries present" true
    (List.exists (fun e -> e.Driver.check = "race") r.Driver.entries)

let test_seeded_race_detected () =
  let r = Driver.run ~shapes ~permutes ~lanes ~seed_race:true () in
  Alcotest.(check bool) "not ok" false (Driver.ok r);
  Alcotest.(check int) "no violations" 0 r.Driver.violations;
  Alcotest.(check bool) "detections" true (r.Driver.detections > 0);
  List.iter
    (fun e ->
      if e.Driver.check = "race" && e.Driver.status <> Driver.Detected then
        Alcotest.failf "race entry %s not detected (%s)" e.Driver.subject
          e.Driver.detail)
    r.Driver.entries

let test_seeded_oob_detected () =
  let r = Driver.run ~shapes ~permutes ~lanes ~seed_oob:true () in
  Alcotest.(check bool) "not ok" false (Driver.ok r);
  Alcotest.(check int) "no violations" 0 r.Driver.violations;
  Alcotest.(check int) "one detection" 1 r.Driver.detections;
  match
    List.find_opt
      (fun e -> e.Driver.subject = "seeded out-of-bounds")
      r.Driver.entries
  with
  | Some e -> Alcotest.(check bool) "detected" true (e.Driver.status = Driver.Detected)
  | None -> Alcotest.fail "seeded OOB entry missing"

let test_shadow_runs_clean () =
  let r = Driver.run ~shapes ~permutes ~lanes ~shadow:true () in
  Alcotest.(check bool) "ok" true (Driver.ok r);
  Alcotest.(check bool) "shadow entries present" true
    (List.exists (fun e -> e.Driver.check = "shadow") r.Driver.entries)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_json_rendering () =
  let r = Driver.run ~shapes:[ (3, 5) ] ~permutes:[] ~lanes:[ 2 ] () in
  let json = Driver.to_json r in
  Alcotest.(check bool) "violations field" true
    (contains ~sub:"\"violations\":0" json);
  Alcotest.(check bool) "entries array" true
    (contains ~sub:"\"entries\":[{" json);
  Alcotest.(check bool) "status rendered" true
    (contains ~sub:"\"status\":\"proved\"" json);
  let pretty = Format.asprintf "%a" Driver.pp r in
  Alcotest.(check bool) "summary line" true
    (contains ~sub:"0 violations" pretty)

let families_of r =
  List.sort_uniq compare (List.map (fun e -> e.Driver.check) r.Driver.entries)

let test_only_filter () =
  let r = Driver.run ~shapes ~permutes ~lanes ~only:[ "race" ] () in
  Alcotest.(check (list string)) "race only" [ "race" ] (families_of r);
  (* "perm" is the user-facing synonym of the plan family *)
  let r = Driver.run ~shapes ~permutes ~lanes ~only:[ "perm" ] () in
  Alcotest.(check (list string)) "perm selects plan" [ "plan" ] (families_of r);
  (* naming an opt-in family enables it without its flag *)
  let r = Driver.run ~shapes:[ (3, 5) ] ~permutes ~lanes ~only:[ "shadow" ] () in
  Alcotest.(check (list string)) "shadow enabled" [ "shadow" ] (families_of r);
  Alcotest.(check bool) "ok" true (Driver.ok r)

let test_only_bounds_seeded () =
  (* the fast static negative: just the seeded certificate, no grid *)
  let r =
    Driver.run ~shapes ~permutes ~lanes ~only:[ "bounds" ] ~seed_oob_static:true
      ()
  in
  Alcotest.(check int) "one entry" 1 r.Driver.checked;
  Alcotest.(check int) "one detection" 1 r.Driver.detections;
  match r.Driver.entries with
  | [ e ] ->
      Alcotest.(check string) "family" "bounds" e.Driver.check;
      Alcotest.(check string) "subject" "seeded/rotate-oob" e.Driver.subject;
      Alcotest.(check bool) "detected" true (e.Driver.status = Driver.Detected)
  | _ -> Alcotest.fail "expected exactly the seeded bounds entry"

let test_verdict () =
  let clean = Driver.run ~shapes ~permutes ~lanes () in
  Alcotest.(check bool) "clean verdict" true (Driver.verdict clean = Ok ());
  let seeded = Driver.run ~shapes ~permutes ~lanes ~seed_race:true () in
  (match Driver.verdict seeded with
  | Ok () -> Alcotest.fail "seeded run must not verdict Ok"
  | Error msg ->
      Alcotest.(check bool) "mentions detection" true
        (contains ~sub:"detected" msg));
  Alcotest.(check string) "unknown family" ""
    (match Driver.family_of_name "nonsense" with Some f -> f | None -> "");
  Alcotest.(check bool) "perm normalizes" true
    (Driver.family_of_name "perm" = Some "plan")

let tests =
  [
    Alcotest.test_case "clean run ok" `Quick test_clean_run_ok;
    Alcotest.test_case "seeded race detected" `Quick test_seeded_race_detected;
    Alcotest.test_case "seeded OOB detected" `Quick test_seeded_oob_detected;
    Alcotest.test_case "shadow runs clean" `Quick test_shadow_runs_clean;
    Alcotest.test_case "report rendering" `Quick test_json_rendering;
    Alcotest.test_case "only filter" `Quick test_only_filter;
    Alcotest.test_case "only bounds seeded" `Quick test_only_bounds_seeded;
    Alcotest.test_case "verdict" `Quick test_verdict;
  ]
