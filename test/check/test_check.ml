let () =
  Alcotest.run "xpose_check"
    [
      ("perm", Suite_perm.tests);
      ("spec", Suite_spec.tests);
      ("footprint", Suite_footprint.tests);
      ("driver", Suite_driver.tests);
      ("access", Suite_access.tests);
      ("bounds", Suite_bounds.tests);
      ("alias", Suite_alias.tests);
    ]
