(* The symbolic permutation vocabulary: gather-form composition order and
   the exhaustive/probed verification split. *)

open Xpose_check

(* Applying a gather map to a concrete array: new.(l) = old.(map l). *)
let apply_to_array perm a =
  Array.init (Array.length a) (fun l -> a.(Perm.apply perm l))

let test_compose_order () =
  (* [compose p q] must mean "run p first, then q" — the gather-form
     reversal is where an orientation bug would hide. *)
  let size = 6 in
  let rotate = Perm.make ~size (fun l -> (l + 1) mod size) in
  let reverse = Perm.make ~size (fun l -> size - 1 - l) in
  let a = Array.init size (fun i -> 10 * i) in
  let sequential = apply_to_array reverse (apply_to_array rotate a) in
  Alcotest.(check (array int))
    "compose = p then q" sequential
    (apply_to_array (Perm.compose rotate reverse) a);
  Alcotest.(check (array int))
    "pipeline runs in list order" sequential
    (apply_to_array (Perm.pipeline ~size [ rotate; reverse ]) a);
  Alcotest.(check (array int))
    "empty pipeline is the identity" a
    (apply_to_array (Perm.pipeline ~size []) a)

let test_verify_exhaustive () =
  let size = 100 in
  let target = Perm.make ~size (fun l -> l * 7 mod size) in
  (match Perm.verify ~target target with
  | Perm.Proved { checked; exhaustive } ->
      Alcotest.(check int) "all indices" size checked;
      Alcotest.(check bool) "exhaustive" true exhaustive
  | Perm.Mismatch _ -> Alcotest.fail "self-verification must prove");
  match Perm.verify ~target (Perm.id size) with
  | Perm.Mismatch { index; expected; got } ->
      Alcotest.(check int) "first disagreeing index" 1 index;
      Alcotest.(check int) "target source" 7 expected;
      Alcotest.(check int) "pipeline source" 1 got
  | Perm.Proved _ -> Alcotest.fail "id is not the target"

let test_verify_probed () =
  (* Above the threshold, verification is probes + deterministic samples:
     a planted probe must be visited, junk probes must be dropped, and a
     global mismatch must still be caught by the samples alone. *)
  let size = 1 lsl 20 in
  let target = Perm.id size in
  let planted = 123_457 in
  let bad =
    Perm.make ~size (fun l -> if l = planted then 0 else l)
  in
  (match Perm.verify ~probes:[ planted ] ~target bad with
  | Perm.Mismatch { index; got; _ } ->
      Alcotest.(check int) "planted probe caught" planted index;
      Alcotest.(check int) "wrong source reported" 0 got
  | Perm.Proved _ -> Alcotest.fail "planted mismatch missed");
  (match Perm.verify ~probes:[ -5; size; size + 3 ] ~target target with
  | Perm.Proved { exhaustive; checked } ->
      Alcotest.(check bool) "probed, not exhaustive" false exhaustive;
      Alcotest.(check bool) "samples ran" true (checked > 0)
  | Perm.Mismatch _ -> Alcotest.fail "self-verification must prove");
  match
    Perm.verify ~target (Perm.make ~size (fun l -> (l + 1) mod size))
  with
  | Perm.Mismatch _ -> ()
  | Perm.Proved _ -> Alcotest.fail "global shift not caught by samples"

let test_verify_threshold_boundary () =
  (* size = threshold is still exhaustive; one past is probed. *)
  let check_mode size expected_exhaustive =
    let target = Perm.id size in
    match Perm.verify ~threshold:64 ~target target with
    | Perm.Proved { exhaustive; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "size %d" size)
          expected_exhaustive exhaustive
    | Perm.Mismatch _ -> Alcotest.fail "id must prove"
  in
  check_mode 64 true;
  check_mode 65 false

let tests =
  [
    Alcotest.test_case "compose order" `Quick test_compose_order;
    Alcotest.test_case "exhaustive verification" `Quick test_verify_exhaustive;
    Alcotest.test_case "probed verification" `Quick test_verify_probed;
    Alcotest.test_case "threshold boundary" `Quick
      test_verify_threshold_boundary;
  ]
