let () =
  Alcotest.run "xpose_core"
    [
      ("intmath", Suite_intmath.tests);
      ("magic", Suite_magic.tests);
      ("layout", Suite_layout.tests);
      ("plan", Suite_plan.tests);
      ("storage", Suite_storage.tests);
      ("algo", Suite_algo.tests);
      ("trace", Suite_trace.tests);
      ("views", Suite_views.tests);
      ("tensor3", Suite_tensor3.tests);
      ("theory", Suite_theory.tests);
      ("cross_storage", Suite_cross_storage.tests);
      ("rotate90", Suite_rotate90.tests);
      ("tune_cost", Suite_tune_cost.tests);
    ]
