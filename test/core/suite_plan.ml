open Xpose_core

let gen_dims =
  QCheck2.Gen.(
    oneof
      [
        pair (int_range 1 64) (int_range 1 64);
        pair (int_range 1 400) (int_range 1 400);
        (* Force shared factors, the interesting c > 1 regime. *)
        map
          (fun ((a, b), c) -> (a * c, b * c))
          (pair (pair (int_range 1 20) (int_range 1 20)) (int_range 1 12));
      ])

let test_internal_consistency () =
  for m = 1 to 24 do
    for n = 1 to 24 do
      Plan.check_internal (Plan.make ~m ~n)
    done
  done;
  Plan.check_internal (Plan.make ~m:7200 ~n:1800)

let test_invalid () =
  Alcotest.check_raises "bad plan" (Invalid_argument "Plan.make: dimensions must be positive")
    (fun () -> ignore (Plan.make ~m:0 ~n:4))

let test_coprime () =
  Alcotest.(check bool) "3x8 coprime" true (Plan.coprime (Plan.make ~m:3 ~n:8));
  Alcotest.(check bool) "4x8 not" false (Plan.coprime (Plan.make ~m:4 ~n:8));
  Alcotest.(check int) "scratch" 8 (Plan.scratch_elements (Plan.make ~m:4 ~n:8))

let test_periodicity_lemma1 () =
  (* Lemma 1: d_i(j) = (i + j*m) mod n is periodic with period b. *)
  let m = 6 and n = 9 in
  let p = Plan.make ~m ~n in
  let b = p.Plan.b in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 - b do
      Alcotest.(check int) "period b"
        (Layout.d ~m ~n i j)
        (Layout.d ~m ~n i (j + b))
    done
  done

let prop_d'_bijective =
  QCheck2.Test.make ~name:"Theorem 3: d' bijective in j for every i" ~count:300
    gen_dims (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let ok = ref true in
      for i = 0 to m - 1 do
        let seen = Array.make n false in
        for j = 0 to n - 1 do
          let x = Plan.d' p ~i j in
          if x < 0 || x >= n || seen.(x) then ok := false else seen.(x) <- true
        done
      done;
      !ok)

let prop_d'_inv =
  QCheck2.Test.make ~name:"Eq. 31: d'_inv inverts d'" ~count:300 gen_dims
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let ok = ref true in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          if Plan.d' p ~i (Plan.d'_inv p ~i j) <> j then ok := false;
          if Plan.d'_inv p ~i (Plan.d' p ~i j) <> j then ok := false
        done
      done;
      !ok)

let prop_s'_decomposition =
  QCheck2.Test.make ~name:"§4.2: p_j (q i) = s'_j i" ~count:300 gen_dims
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let ok = ref true in
      for j = 0 to n - 1 do
        for i = 0 to m - 1 do
          if Plan.p p ~j (Plan.q p i) <> Plan.s' p ~j i then ok := false
        done
      done;
      !ok)

let prop_q_inv =
  QCheck2.Test.make ~name:"Eq. 34: q_inv inverts q" ~count:300 gen_dims
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let ok = ref true in
      for i = 0 to m - 1 do
        if Plan.q p (Plan.q_inv p i) <> i then ok := false;
        if Plan.q_inv p (Plan.q p i) <> i then ok := false
      done;
      !ok)

let prop_s'_inv =
  QCheck2.Test.make ~name:"s'_inv inverts s' (composition order §4.3)"
    ~count:300 gen_dims (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let ok = ref true in
      for j = 0 to min (n - 1) 40 do
        for i = 0 to m - 1 do
          if Plan.s' p ~j (Plan.s'_inv p ~j i) <> i then ok := false
        done
      done;
      !ok)

let prop_rotations_inverse =
  QCheck2.Test.make ~name:"Eqs. 23/36 and 32/35 are mutually inverse"
    ~count:300 gen_dims (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let ok = ref true in
      for j = 0 to min (n - 1) 40 do
        for i = 0 to m - 1 do
          if Plan.r_inv p ~j (Plan.r p ~j i) <> i then ok := false;
          if Plan.p_inv p ~j (Plan.p p ~j i) <> i then ok := false
        done
      done;
      !ok)

let prop_coprime_degenerate =
  QCheck2.Test.make ~name:"coprime dims: d' = d (paper §3)" ~count:300
    QCheck2.Gen.(pair (int_range 1 100) (int_range 1 100))
    (fun (m, n) ->
      QCheck2.assume (Intmath.is_coprime m n);
      let p = Plan.make ~m ~n in
      let ok = ref true in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          if Plan.d' p ~i j <> Layout.d ~m ~n i j then ok := false
        done
      done;
      !ok)

let test_cache_hit_miss () =
  let cache = Plan.Cache.create ~capacity:8 () in
  let p1 = Plan.Cache.get ~cache ~m:48 ~n:36 () in
  let p2 = Plan.Cache.get ~cache ~m:48 ~n:36 () in
  Alcotest.(check bool) "hit returns the cached plan" true (p1 == p2);
  Alcotest.(check int) "one miss" 1 (Plan.Cache.misses cache);
  Alcotest.(check int) "one hit" 1 (Plan.Cache.hits cache);
  let p3 = Plan.Cache.get ~cache ~m:36 ~n:48 () in
  Alcotest.(check bool) "transposed shape is a distinct entry" true
    (p3 != p1 && p3.m = 36 && p3.n = 48);
  Alcotest.(check int) "two entries" 2 (Plan.Cache.length cache);
  Plan.Cache.clear cache;
  Alcotest.(check int) "clear empties" 0 (Plan.Cache.length cache);
  Alcotest.(check int) "clear resets hits" 0 (Plan.Cache.hits cache)

(* Regression: the cache used to key on (m, n) alone, so two callers
   of one shape running under different tuned parameters collided on a
   single entry — the second caller silently read an entry stamped for
   the first one's configuration, and [cached_params] could not exist.
   The key now carries the parameters. *)
let test_cache_params_key () =
  let cache = Plan.Cache.create ~capacity:8 () in
  let wide = { Tune_params.default with panel_width = 32 } in
  let p1 = Plan.Cache.get ~cache ~m:48 ~n:36 () in
  let p2 = Plan.Cache.get ~cache ~params:wide ~m:48 ~n:36 () in
  Alcotest.(check int) "distinct params are distinct entries" 2
    (Plan.Cache.length cache);
  Alcotest.(check int) "both were misses (the former collision)" 2
    (Plan.Cache.misses cache);
  Alcotest.(check bool) "separately cached" true (p1 != p2);
  let p3 = Plan.Cache.get ~cache ~params:wide ~m:48 ~n:36 () in
  Alcotest.(check bool) "same params hit their own entry" true (p2 == p3);
  Alcotest.(check int) "one hit" 1 (Plan.Cache.hits cache);
  match Plan.Cache.cached_params ~cache ~m:48 ~n:36 () with
  | first :: rest ->
      Alcotest.(check bool) "most recently used params first" true
        (Tune_params.equal first wide);
      Alcotest.(check int) "both param variants listed" 1 (List.length rest)
  | [] -> Alcotest.fail "cached_params empty for a cached shape"

let test_cache_lru_eviction () =
  let cache = Plan.Cache.create ~capacity:2 () in
  let p_a = Plan.Cache.get ~cache ~m:3 ~n:4 () in
  let _ = Plan.Cache.get ~cache ~m:5 ~n:6 () in
  (* Touch (3,4) so (5,6) is the least recently used, then overflow. *)
  let p_a' = Plan.Cache.get ~cache ~m:3 ~n:4 () in
  Alcotest.(check bool) "touch is a hit" true (p_a == p_a');
  let _ = Plan.Cache.get ~cache ~m:7 ~n:8 () in
  Alcotest.(check int) "capacity respected" 2 (Plan.Cache.length cache);
  let p_a'' = Plan.Cache.get ~cache ~m:3 ~n:4 () in
  Alcotest.(check bool) "recently used survives eviction" true (p_a == p_a'');
  let misses = Plan.Cache.misses cache in
  let _ = Plan.Cache.get ~cache ~m:5 ~n:6 () in
  Alcotest.(check int) "LRU victim was evicted (rebuild misses)"
    (misses + 1) (Plan.Cache.misses cache)

let test_cache_eviction_counter () =
  let cache = Plan.Cache.create ~capacity:2 () in
  Alcotest.(check int) "fresh cache" 0 (Plan.Cache.evictions cache);
  let _ = Plan.Cache.get ~cache ~m:3 ~n:4 () in
  let _ = Plan.Cache.get ~cache ~m:5 ~n:6 () in
  Alcotest.(check int) "fills don't evict" 0 (Plan.Cache.evictions cache);
  let _ = Plan.Cache.get ~cache ~m:7 ~n:8 () in
  Alcotest.(check int) "overflow evicts once" 1 (Plan.Cache.evictions cache);
  (* Hits never evict. *)
  let _ = Plan.Cache.get ~cache ~m:5 ~n:6 () in
  Alcotest.(check int) "hit doesn't evict" 1 (Plan.Cache.evictions cache);
  (* Rebuilding the evicted (3,4) entry overflows again. *)
  let _ = Plan.Cache.get ~cache ~m:3 ~n:4 () in
  Alcotest.(check int) "rebuild of evicted entry evicts again" 2
    (Plan.Cache.evictions cache);
  Plan.Cache.clear cache;
  Alcotest.(check int) "clear resets evictions" 0 (Plan.Cache.evictions cache)

(* Hammer the cache from several domains at once: the server resolves
   plans concurrently (acceptor threads and dispatcher), so lookups,
   inserts, and LRU evictions must not corrupt the table or the
   bookkeeping. Each [get] counts exactly one hit or one miss under the
   lock, so the totals must balance the number of calls exactly. *)
let test_cache_hammer () =
  let capacity = 4 in
  let cache = Plan.Cache.create ~capacity () in
  (* More shapes than capacity, so the domains also race evictions. *)
  let shapes =
    [| (48, 36); (36, 48); (7, 1000); (1000, 7); (128, 128); (31, 97) |]
  in
  let domains = 4 and iterations = 400 in
  let bad = Atomic.make 0 in
  let worker d () =
    for i = 0 to iterations - 1 do
      (* Distinct traversal order per domain: same-shape collisions and
         disjoint working sets both occur. *)
      let m, n = shapes.((i + (d * 2)) mod Array.length shapes) in
      let p = Plan.Cache.get ~cache ~m ~n () in
      if p.Plan.m <> m || p.Plan.n <> n then Atomic.incr bad
    done
  in
  let spawned = Array.init domains (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join spawned;
  Alcotest.(check int) "every lookup returned its own shape's plan" 0
    (Atomic.get bad);
  let gets = domains * iterations in
  Alcotest.(check int) "hits + misses account for every get" gets
    (Plan.Cache.hits cache + Plan.Cache.misses cache);
  Alcotest.(check bool) "capacity never exceeded" true
    (Plan.Cache.length cache <= capacity);
  Alcotest.(check bool) "the working set overflowed, so evictions ran" true
    (Plan.Cache.evictions cache > 0);
  (* The cached survivors still resolve correctly after the storm. *)
  Array.iter
    (fun (m, n) ->
      let p = Plan.Cache.get ~cache ~m ~n () in
      Alcotest.(check bool) "post-hammer plan is consistent" true
        (p.Plan.m = m && p.Plan.n = n))
    shapes

let test_cache_invalid () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Plan.Cache.create: capacity must be >= 1") (fun () ->
      ignore (Plan.Cache.create ~capacity:0 ()));
  let cache = Plan.Cache.create () in
  Alcotest.check_raises "bad dims propagate"
    (Invalid_argument "Plan.make: dimensions must be positive") (fun () ->
      ignore (Plan.Cache.get ~cache ~m:0 ~n:4 ()));
  Alcotest.(check int) "failed build not cached" 0 (Plan.Cache.length cache)

let tests =
  [
    Alcotest.test_case "internal consistency (exhaustive small)" `Quick
      test_internal_consistency;
    Alcotest.test_case "cache hit/miss bookkeeping" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache key carries tuned params" `Quick
      test_cache_params_key;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache eviction counter" `Quick
      test_cache_eviction_counter;
    Alcotest.test_case "cache invalid args" `Quick test_cache_invalid;
    Alcotest.test_case "cache concurrent hammer" `Quick test_cache_hammer;
    Alcotest.test_case "invalid dims" `Quick test_invalid;
    Alcotest.test_case "coprime / scratch" `Quick test_coprime;
    Alcotest.test_case "Lemma 1 periodicity" `Quick test_periodicity_lemma1;
    QCheck_alcotest.to_alcotest prop_d'_bijective;
    QCheck_alcotest.to_alcotest prop_d'_inv;
    QCheck_alcotest.to_alcotest prop_s'_decomposition;
    QCheck_alcotest.to_alcotest prop_q_inv;
    QCheck_alcotest.to_alcotest prop_s'_inv;
    QCheck_alcotest.to_alcotest prop_rotations_inverse;
    QCheck_alcotest.to_alcotest prop_coprime_degenerate;
  ]
