open Xpose_core
module S = Storage.Int_elt
module R = Rotate90.Make (Storage.Int_elt)

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

(* references from the index specifications *)
let ref_cw ~m ~n = List.init (m * n) (fun l ->
    let i = l / m and j = l mod m in
    ((m - 1 - j) * n) + i)

let ref_ccw ~m ~n = List.init (m * n) (fun l ->
    let i = l / m and j = l mod m in
    (j * n) + (n - 1 - i))

let ref_half ~m ~n = List.init (m * n) (fun l -> (m * n) - 1 - l)

let shapes = [ (1, 1); (2, 3); (3, 2); (4, 4); (5, 9); (9, 5); (16, 12); (31, 17) ]

let test_clockwise () =
  List.iter
    (fun (m, n) ->
      let buf = iota_buf (m * n) in
      R.clockwise ~m ~n buf;
      Alcotest.(check (list int))
        (Printf.sprintf "cw %dx%d" m n)
        (ref_cw ~m ~n) (buf_to_list buf))
    shapes

let test_counter_clockwise () =
  List.iter
    (fun (m, n) ->
      let buf = iota_buf (m * n) in
      R.counter_clockwise ~m ~n buf;
      Alcotest.(check (list int))
        (Printf.sprintf "ccw %dx%d" m n)
        (ref_ccw ~m ~n) (buf_to_list buf))
    shapes

let test_half_turn () =
  List.iter
    (fun (m, n) ->
      let buf = iota_buf (m * n) in
      R.half_turn ~m ~n buf;
      Alcotest.(check (list int))
        (Printf.sprintf "half %dx%d" m n)
        (ref_half ~m ~n) (buf_to_list buf))
    shapes

let test_four_quarters_identity () =
  let m = 7 and n = 11 in
  let buf = iota_buf (m * n) in
  R.clockwise ~m ~n buf;
  R.clockwise ~m:n ~n:m buf;
  R.clockwise ~m ~n buf;
  R.clockwise ~m:n ~n:m buf;
  Alcotest.(check (list int)) "4 quarter turns = id"
    (List.init (m * n) Fun.id) (buf_to_list buf)

let test_cw_ccw_inverse () =
  let m = 8 and n = 13 in
  let buf = iota_buf (m * n) in
  R.clockwise ~m ~n buf;
  R.counter_clockwise ~m:n ~n:m buf;
  Alcotest.(check (list int)) "ccw inverts cw"
    (List.init (m * n) Fun.id) (buf_to_list buf)

let test_two_quarters_equal_half () =
  let m = 6 and n = 10 in
  let a = iota_buf (m * n) in
  R.clockwise ~m ~n a;
  R.clockwise ~m:n ~n:m a;
  let b = iota_buf (m * n) in
  R.half_turn ~m ~n b;
  Alcotest.(check (list int)) "cw . cw = half turn" (buf_to_list b) (buf_to_list a)

let test_errors () =
  let buf = iota_buf 5 in
  Alcotest.check_raises "size" (Invalid_argument "Rotate90: buffer size")
    (fun () -> R.clockwise ~m:2 ~n:3 buf)

let prop_random =
  QCheck2.Test.make ~name:"rotations match references on random shapes"
    ~count:80
    QCheck2.Gen.(pair (int_range 1 40) (int_range 1 40))
    (fun (m, n) ->
      let a = iota_buf (m * n) in
      R.clockwise ~m ~n a;
      let b = iota_buf (m * n) in
      R.counter_clockwise ~m ~n b;
      buf_to_list a = ref_cw ~m ~n && buf_to_list b = ref_ccw ~m ~n)

let tests =
  [
    Alcotest.test_case "clockwise" `Quick test_clockwise;
    Alcotest.test_case "counter-clockwise" `Quick test_counter_clockwise;
    Alcotest.test_case "half turn" `Quick test_half_turn;
    Alcotest.test_case "four quarters = id" `Quick test_four_quarters_identity;
    Alcotest.test_case "ccw inverts cw" `Quick test_cw_ccw_inverse;
    Alcotest.test_case "two quarters = half" `Quick test_two_quarters_equal_half;
    Alcotest.test_case "errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest prop_random;
  ]
