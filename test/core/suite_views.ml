open Xpose_core
module S = Storage.Int_elt
module Sl = Views.Slice (Storage.Int_elt)
module Bl = Views.Blocked (Storage.Int_elt)

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let test_slice_basics () =
  let buf = iota_buf 20 in
  let v = Sl.of_buffer buf ~off:5 ~len:10 in
  Alcotest.(check int) "length" 10 (Sl.length v);
  Alcotest.(check int) "get" 7 (Sl.get v 2);
  Sl.set v 0 99;
  Alcotest.(check int) "aliases" 99 (S.get buf 5);
  Alcotest.(check int) "offset" 5 (Sl.offset v);
  Alcotest.check_raises "oob view"
    (Invalid_argument "Views.Slice.of_buffer: range out of bounds") (fun () ->
      ignore (Sl.of_buffer buf ~off:15 ~len:6));
  Alcotest.check_raises "oob index" (Invalid_argument "Views.Slice: index")
    (fun () -> ignore (Sl.get v 10))

let test_slice_blit () =
  let buf = iota_buf 20 in
  let a = Sl.of_buffer buf ~off:0 ~len:10 in
  let b = Sl.of_buffer buf ~off:10 ~len:10 in
  Sl.blit a 0 b 0 10;
  for i = 0 to 9 do
    Alcotest.(check int) "copied" i (S.get buf (10 + i))
  done

let test_slice_transpose () =
  (* transpose a sub-matrix embedded in a larger buffer *)
  let module A = Algo.Make (Sl) in
  let buf = iota_buf 100 in
  let m = 6 and n = 8 in
  let v = Sl.of_buffer buf ~off:20 ~len:(m * n) in
  let p = Plan.make ~m ~n in
  A.c2r p v ~tmp:(Sl.create (max m n));
  for l = 0 to (m * n) - 1 do
    Alcotest.(check int) "slice transposed"
      (20 + (n * (l mod m)) + (l / m))
      (S.get buf (20 + l))
  done;
  (* and the surrounding data is untouched *)
  for l = 0 to 19 do
    Alcotest.(check int) "prefix intact" l (S.get buf l)
  done;
  for l = 20 + (m * n) to 99 do
    Alcotest.(check int) "suffix intact" l (S.get buf l)
  done

let test_blocked_basics () =
  let buf = iota_buf 12 in
  let v = Bl.of_buffer buf ~block:3 in
  Alcotest.(check int) "length" 4 (Bl.length v);
  let e = Bl.get v 1 in
  Alcotest.(check int) "block contents" 4 (S.get e 1);
  Bl.set v 0 e;
  Alcotest.(check int) "block written" 3 (S.get buf 0);
  Alcotest.(check bool) "equal" true (Bl.equal (Bl.get v 0) (Bl.get v 1));
  Alcotest.check_raises "bad block"
    (Invalid_argument "Views.Blocked.of_buffer: block must divide the length")
    (fun () -> ignore (Bl.of_buffer buf ~block:5))

let tests =
  [
    Alcotest.test_case "slice basics" `Quick test_slice_basics;
    Alcotest.test_case "slice blit" `Quick test_slice_blit;
    Alcotest.test_case "transpose inside a slice" `Quick test_slice_transpose;
    Alcotest.test_case "blocked basics" `Quick test_blocked_basics;
  ]
