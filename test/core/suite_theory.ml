open Xpose_core

let test_exhaustive_small () =
  for m = 1 to 14 do
    for n = 1 to 14 do
      let p = Plan.make ~m ~n in
      List.iter
        (fun (name, ok) ->
          if not ok then Alcotest.failf "%s fails for m=%d n=%d" name m n)
        (Theory.check_all p)
    done
  done

let test_paper_shapes () =
  List.iter
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      List.iter
        (fun (name, ok) ->
          Alcotest.(check bool) (Printf.sprintf "%s %dx%d" name m n) true ok)
        (Theory.check_all p))
    [ (3, 8); (4, 8); (32, 24); (72, 32); (100, 64) ]

let test_work_bound_tight () =
  (* coprime dims skip the pre-rotation: exactly 4mn touches *)
  let p = Plan.make ~m:7 ~n:9 in
  let touches, scratch = Theory.theorem6_work_and_space p in
  Alcotest.(check int) "coprime touches" (4 * 7 * 9) touches;
  Alcotest.(check int) "scratch" 9 scratch;
  (* with shared factors at most 6mn *)
  let p = Plan.make ~m:8 ~n:12 in
  let touches, _ = Theory.theorem6_work_and_space p in
  Alcotest.(check bool) "<= 6mn" true (touches <= 6 * 8 * 12);
  Alcotest.(check bool) "> 4mn (pre-rotation ran)" true (touches > 4 * 8 * 12)

let test_rotation_cycles () =
  for m = 1 to 24 do
    for r = 0 to m - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "rotation cycles m=%d r=%d" m r)
        true
        (Theory.rotation_cycle_structure ~m ~r)
    done
  done

let prop_random_dims =
  QCheck2.Test.make ~name:"all claims on random dims" ~count:60
    QCheck2.Gen.(pair (int_range 1 60) (int_range 1 60))
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      List.for_all snd (Theory.check_all p))

let prop_shared_factor_dims =
  QCheck2.Test.make ~name:"all claims when gcd(m,n) > 1" ~count:60
    QCheck2.Gen.(
      map
        (fun ((a, b), c) -> (a * c, b * c))
        (pair (pair (int_range 1 10) (int_range 1 10)) (int_range 2 8)))
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      List.for_all snd (Theory.check_all p))

let tests =
  [
    Alcotest.test_case "exhaustive small dims" `Quick test_exhaustive_small;
    Alcotest.test_case "paper's shapes" `Quick test_paper_shapes;
    Alcotest.test_case "work bound tightness" `Quick test_work_bound_tight;
    Alcotest.test_case "rotation cycle structure (§4.6)" `Quick
      test_rotation_cycles;
    QCheck_alcotest.to_alcotest prop_random_dims;
    QCheck_alcotest.to_alcotest prop_shared_factor_dims;
  ]
