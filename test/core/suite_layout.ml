open Xpose_core

let test_linearizations () =
  let m = 5 and n = 7 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      (* lrm(irm l, jrm l) = l and the column-major twin (paper Eqs. 1-6) *)
      let l = Layout.lrm ~n i j in
      Alcotest.(check int) "irm" i (Layout.irm ~n l);
      Alcotest.(check int) "jrm" j (Layout.jrm ~n l);
      let l' = Layout.lcm_ ~m i j in
      Alcotest.(check int) "icm" i (Layout.icm ~m l');
      Alcotest.(check int) "jcm" j (Layout.jcm ~m l')
    done
  done

let test_sctd_example () =
  (* Paper's worked example (§2): m = 3, n = 8; the element at i=2, j=0
     moves to i'=1, j'=5 under R2C. *)
  let m = 3 and n = 8 in
  Alcotest.(check int) "s(2,0)" 1 (Layout.s ~m ~n 2 0);
  Alcotest.(check int) "c(2,0)" 5 (Layout.c ~m ~n 2 0)

let test_dims () =
  let d = Layout.dims ~m:4 ~n:9 in
  Alcotest.(check int) "elements" 36 (Layout.elements d);
  let s = Layout.swap d in
  Alcotest.(check int) "swap m" 9 s.Layout.m;
  Alcotest.(check int) "swap n" 4 s.Layout.n;
  Alcotest.check_raises "bad dims" (Invalid_argument "Layout.dims: dimensions must be positive")
    (fun () -> ignore (Layout.dims ~m:0 ~n:3))

let test_order () =
  Alcotest.(check bool) "eq" true Layout.(equal_order Row_major Row_major);
  Alcotest.(check bool) "neq" false Layout.(equal_order Row_major Col_major);
  Alcotest.(check bool) "flip" true
    Layout.(equal_order (flip Row_major) Col_major);
  Alcotest.(check string) "pp" "row-major"
    (Format.asprintf "%a" Layout.pp_order Layout.Row_major)

let prop_transpose_index_involution =
  QCheck2.Test.make ~name:"transpose_index is an involution across m<->n"
    ~count:1000
    QCheck2.Gen.(triple (int_range 1 50) (int_range 1 50) (int_range 0 2499))
    (fun (m, n, l) ->
      QCheck2.assume (l < m * n);
      let l' = Layout.transpose_index ~m ~n l in
      l' >= 0 && l' < m * n && Layout.transpose_index ~m:n ~n:m l' = l)

let prop_c2r_gather_defs =
  (* Eqs. 7-10 vs their definitional forms. *)
  QCheck2.Test.make ~name:"s,c,t,d match definitions" ~count:1000
    QCheck2.Gen.(quad (int_range 1 40) (int_range 1 40) (int_range 0 39) (int_range 0 39))
    (fun (m, n, i, j) ->
      QCheck2.assume (i < m && j < n);
      Layout.s ~m ~n i j = (j + (i * n)) mod m
      && Layout.c ~m ~n i j = (j + (i * n)) / m
      && Layout.t ~m ~n i j = (i + (j * m)) / n
      && Layout.d ~m ~n i j = (i + (j * m)) mod n)

let tests =
  [
    Alcotest.test_case "linearization inverses" `Quick test_linearizations;
    Alcotest.test_case "paper element-16 example" `Quick test_sctd_example;
    Alcotest.test_case "dims" `Quick test_dims;
    Alcotest.test_case "order" `Quick test_order;
    QCheck_alcotest.to_alcotest prop_transpose_index_involution;
    QCheck_alcotest.to_alcotest prop_c2r_gather_defs;
  ]
