(* The algorithm must induce the same permutation regardless of element
   type: run every storage instance on the same shapes and compare the
   integer tags. *)

open Xpose_core

let permutation_of (type b) (module M : Storage.S with type t = b)
    (transpose : b -> unit) len =
  let buf = M.create len in
  Storage.fill_iota (module M) buf;
  transpose buf;
  List.init len (fun l -> M.to_int (M.get buf l))

let shapes = [ (3, 8); (4, 8); (17, 13); (24, 36); (1, 7); (7, 1) ]

let test_all_instances_agree () =
  List.iter
    (fun (m, n) ->
      let reference =
        let module A = Algo.Make (Storage.Int_elt) in
        permutation_of (module Storage.Int_elt) (A.transpose ~m ~n) (m * n)
      in
      let check name actual =
        Alcotest.(check (list int)) (Printf.sprintf "%s %dx%d" name m n)
          reference actual
      in
      let module A64 = Algo.Make (Storage.Float64) in
      check "float64"
        (permutation_of (module Storage.Float64) (A64.transpose ~m ~n) (m * n));
      let module A32 = Algo.Make (Storage.Float32) in
      check "float32"
        (permutation_of (module Storage.Float32) (A32.transpose ~m ~n) (m * n));
      let module I64 = Algo.Make (Storage.Int64_elt) in
      check "int64"
        (permutation_of (module Storage.Int64_elt) (I64.transpose ~m ~n) (m * n));
      let module I32 = Algo.Make (Storage.Int32_elt) in
      check "int32"
        (permutation_of (module Storage.Int32_elt) (I32.transpose ~m ~n) (m * n));
      check "kernels_f64"
        (permutation_of
           (module Storage.Float64)
           (Kernels_f64.transpose ~m ~n)
           (m * n));
      List.iter
        (fun bytes ->
          (* narrow blob tags wrap at 2^(8*bytes); mask the reference *)
          let mask = if bytes >= 8 then -1 else (1 lsl (8 * bytes)) - 1 in
          let module B = Storage.Blob (struct
            let elt_bytes = bytes
          end) in
          let module AB = Algo.Make (B) in
          Alcotest.(check (list int))
            (Printf.sprintf "blob%d %dx%d" bytes m n)
            (List.map (fun v -> v land mask) reference)
            (permutation_of (module B) (AB.transpose ~m ~n) (m * n)))
        [ 1; 3; 8; 24 ])
    shapes

let test_instances_exposed () =
  (* the Instances module compiles usable pre-applied functors *)
  let m = 6 and n = 10 in
  let check_instance (type b) (module M : Storage.S with type t = b)
      (transpose : b -> unit) =
    let buf = M.create (m * n) in
    Storage.fill_iota (module M) buf;
    transpose buf;
    Alcotest.(check int) "corner" n (M.to_int (M.get buf 1))
  in
  check_instance (module Storage.Float64) (Instances.F64.transpose ~m ~n);
  check_instance (module Storage.Float32) (Instances.F32.transpose ~m ~n);
  check_instance (module Storage.Int64_elt) (Instances.I64.transpose ~m ~n);
  check_instance (module Storage.Int32_elt) (Instances.I32.transpose ~m ~n);
  check_instance (module Storage.Int_elt) (Instances.I.transpose ~m ~n)

let prop_random_shapes_blob_vs_int =
  QCheck2.Test.make ~name:"blob and int agree on random shapes" ~count:60
    QCheck2.Gen.(triple (int_range 1 30) (int_range 1 30) (int_range 1 16))
    (fun (m, n, bytes) ->
      let mask = if bytes >= 8 then -1 else (1 lsl (8 * bytes)) - 1 in
      let module B = Storage.Blob (struct
        let elt_bytes = bytes
      end) in
      let module AB = Algo.Make (B) in
      let module AI = Algo.Make (Storage.Int_elt) in
      permutation_of (module B) (AB.transpose ~m ~n) (m * n)
      = List.map
          (fun v -> v land mask)
          (permutation_of (module Storage.Int_elt) (AI.transpose ~m ~n) (m * n)))

let tests =
  [
    Alcotest.test_case "all instances agree" `Quick test_all_instances_agree;
    Alcotest.test_case "Instances module" `Quick test_instances_exposed;
    QCheck_alcotest.to_alcotest prop_random_shapes_blob_vs_int;
  ]
