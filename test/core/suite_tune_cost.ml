open Xpose_core

(* Property tests for the calibrated pricing the autotuner prunes
   with: [Pass_cost.rates_of_calibration] must hand back exactly the
   per-byte costs the probes measured, and the width-scaled rates must
   respond to a perturbed calibration monotonically — otherwise the
   tuner's model-ordered timing schedule is garbage. *)

let probe gbps = { Xpose_obs.Calibrate.gbps; ns_per_byte = 1.0 /. gbps }

let cal_of ~stream ~gather ~scatter ~permute =
  {
    Xpose_obs.Calibrate.elems = 1 lsl 16;
    repeats = 3;
    panel_width = 16;
    stream = probe stream;
    gather = probe gather;
    scatter = probe scatter;
    permute = probe permute;
    ghz = None;
  }

(* gbps quadruple with every strided roof at or below the stream roof
   (what real machines measure), so the width-scaling excess is
   non-negative and the stream floor never engages mid-property. *)
let gen_cal =
  QCheck2.Gen.(
    bind (float_range 20.0 60.0) (fun stream ->
        map
          (fun (g, (sc, p)) ->
            cal_of ~stream ~gather:(stream *. g) ~scatter:(stream *. sc)
              ~permute:(stream *. p))
          (pair (float_range 0.05 1.0)
             (pair (float_range 0.05 1.0) (float_range 0.05 1.0)))))

let close a b =
  Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let prop_rates_reproduce_probes =
  QCheck2.Test.make ~name:"rates_of_calibration reproduces the probe costs"
    ~count:200 gen_cal (fun cal ->
      let r = Pass_cost.rates_of_calibration cal in
      let open Xpose_obs.Calibrate in
      close r.Pass_cost.stream_ns_per_byte cal.stream.ns_per_byte
      && close r.Pass_cost.gather_ns_per_byte cal.gather.ns_per_byte
      && close r.Pass_cost.scatter_ns_per_byte cal.scatter.ns_per_byte
      && close r.Pass_cost.permute_ns_per_byte cal.permute.ns_per_byte
      (* and at the calibrated width the scaled rate is the probe rate
         itself (floored at the stream roof) *)
      && List.for_all
           (fun (kind, probe_rate) ->
             close
               (Pass_cost.rate_at_width r kind ~calibrated_width:16 ~width:16)
               (Float.max cal.stream.ns_per_byte probe_rate))
           [
             (Xpose_obs.Roofline.Gather, cal.gather.ns_per_byte);
             (Scatter, cal.scatter.ns_per_byte);
             (Permute, cal.permute.ns_per_byte);
           ])

let widths = Tune_params.supported_widths

let prop_rate_monotone_in_width =
  QCheck2.Test.make
    ~name:"rate_at_width: non-increasing in width, floored at stream"
    ~count:200 gen_cal (fun cal ->
      let r = Pass_cost.rates_of_calibration cal in
      List.for_all
        (fun kind ->
          let rates =
            List.map
              (fun w ->
                Pass_cost.rate_at_width r kind ~calibrated_width:16 ~width:w)
              widths
          in
          List.for_all (fun x -> x >= r.Pass_cost.stream_ns_per_byte) rates
          && fst
               (List.fold_left
                  (fun (ok, prev) x -> (ok && x <= prev +. 1e-12, x))
                  (true, Float.infinity) rates))
        [ Xpose_obs.Roofline.Gather; Scatter; Permute ])

(* Perturbing one strided roof shifts candidate *ranking*
   monotonically: pricing candidate A (strided traffic sA plus
   streaming) against B (strided sB), slowing the strided probe by a
   growing factor moves the price gap A - B in the direction of
   sign (sA - sB) and never back. A flip can therefore only happen
   once, toward the candidate with less strided traffic — the tuner's
   prune order degrades gracefully as a calibration goes stale. *)
let prop_perturbation_shifts_ranking_monotonically =
  QCheck2.Test.make
    ~name:"perturbed calibration shifts candidate ranking monotonically"
    ~count:200
    QCheck2.Gen.(
      pair gen_cal
        (pair
           (pair (int_range 0 4000) (int_range 0 4000))
           (pair (int_range 0 4000) (int_range 0 4000))))
    (fun (cal, (((sa, ta), (sb, tb)) : (int * int) * (int * int))) ->
      let price cal ~strided ~streamed =
        let r = Pass_cost.rates_of_calibration cal in
        Pass_cost.predicted_ns_at_width r ~kind:Xpose_obs.Roofline.Scatter
          ~calibrated_width:16 ~width:16 ~touches:strided
        +. Pass_cost.predicted_ns r ~kind:Xpose_obs.Roofline.Stream
             ~touches:streamed
      in
      let slow factor =
        let open Xpose_obs.Calibrate in
        let p = cal.scatter in
        {
          cal with
          scatter =
            {
              gbps = p.gbps /. factor;
              ns_per_byte = p.ns_per_byte *. factor;
            };
        }
      in
      let gap factor =
        let cal = slow factor in
        price cal ~strided:sa ~streamed:ta -. price cal ~strided:sb ~streamed:tb
      in
      let g1 = gap 1.0 and g2 = gap 1.5 and g3 = gap 2.5 in
      if sa > sb then g1 <= g2 +. 1e-9 && g2 <= g3 +. 1e-9
      else if sa < sb then g1 >= g2 -. 1e-9 && g2 >= g3 -. 1e-9
      else close g1 g2 && close g2 g3)

let test_rates_exact () =
  (* The synthetic calibration's costs come straight back out. *)
  let cal = cal_of ~stream:40.0 ~gather:16.0 ~scatter:10.0 ~permute:8.0 in
  let r = Pass_cost.rates_of_calibration cal in
  Alcotest.(check (float 1e-12))
    "stream" (1.0 /. 40.0) r.Pass_cost.stream_ns_per_byte;
  Alcotest.(check (float 1e-12))
    "gather" (1.0 /. 16.0) r.Pass_cost.gather_ns_per_byte;
  Alcotest.(check (float 1e-12))
    "scatter" (1.0 /. 10.0) r.Pass_cost.scatter_ns_per_byte;
  Alcotest.(check (float 1e-12))
    "permute" (1.0 /. 8.0) r.Pass_cost.permute_ns_per_byte;
  (* Widening past the calibrated width amortizes toward (and is
     floored at) the stream rate; narrowing pays more per byte. *)
  let rate w =
    Pass_cost.rate_at_width r Xpose_obs.Roofline.Scatter ~calibrated_width:16
      ~width:w
  in
  Alcotest.(check (float 1e-12)) "calibrated width is the probe" 0.1 (rate 16);
  Alcotest.(check bool) "narrower costs more" true (rate 8 > rate 16);
  Alcotest.(check bool) "wider costs less" true (rate 64 < rate 16);
  Alcotest.(check bool)
    "never beats a stream" true
    (rate 4096 >= r.Pass_cost.stream_ns_per_byte)

let tests =
  [
    Alcotest.test_case "rates round-trip a synthetic calibration" `Quick
      test_rates_exact;
    QCheck_alcotest.to_alcotest prop_rates_reproduce_probes;
    QCheck_alcotest.to_alcotest prop_rate_monotone_in_width;
    QCheck_alcotest.to_alcotest prop_perturbation_shifts_ranking_monotonically;
  ]
