open Xpose_core
module S = Storage.Int_elt
module T = Tensor3.Make (Storage.Int_elt)

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

let all_perms =
  [ (0, 1, 2); (0, 2, 1); (1, 0, 2); (1, 2, 0); (2, 0, 1); (2, 1, 0) ]

(* Out-of-place reference from the index specification. *)
let reference ~dims ~perm =
  let d0, d1, d2 = dims in
  let out = Array.make (d0 * d1 * d2) 0 in
  for i0 = 0 to d0 - 1 do
    for i1 = 0 to d1 - 1 do
      for i2 = 0 to d2 - 1 do
        let src = (((i0 * d1) + i1) * d2) + i2 in
        out.(T.permuted_index ~dims ~perm (i0, i1, i2)) <- src
      done
    done
  done;
  Array.to_list out

let check_permute dims perm =
  let d0, d1, d2 = dims in
  let buf = iota_buf (d0 * d1 * d2) in
  T.permute ~dims ~perm buf;
  Alcotest.(check (list int))
    (Printf.sprintf "permute (%d,%d,%d) by (%d,%d,%d)" d0 d1 d2
       (let a, _, _ = perm in a)
       (let _, b, _ = perm in b)
       (let _, _, c = perm in c))
    (reference ~dims ~perm) (buf_to_list buf)

let test_all_perms_exhaustive_small () =
  List.iter
    (fun dims -> List.iter (fun perm -> check_permute dims perm) all_perms)
    [ (1, 1, 1); (2, 3, 4); (4, 3, 2); (3, 3, 3); (1, 5, 2); (5, 1, 4); (4, 6, 1) ]

let test_larger_shapes () =
  List.iter
    (fun dims -> List.iter (fun perm -> check_permute dims perm) all_perms)
    [ (7, 11, 13); (12, 8, 10); (16, 3, 21) ]

let test_batched () =
  let batch = 5 and m = 4 and n = 7 in
  let buf = iota_buf (batch * m * n) in
  T.transpose_batched ~batch ~m ~n buf;
  for b = 0 to batch - 1 do
    for i = 0 to n - 1 do
      for j = 0 to m - 1 do
        Alcotest.(check int) "batched entry"
          ((b * m * n) + (j * n) + i)
          (S.get buf ((b * m * n) + (i * m) + j))
      done
    done
  done

let test_blocks () =
  let m = 3 and n = 5 and block = 4 in
  let buf = iota_buf (m * n * block) in
  T.transpose_blocks ~m ~n ~block buf;
  (* block (i, j) moved to (j, i); contents stay in order *)
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      for k = 0 to block - 1 do
        Alcotest.(check int) "block entry"
          ((((i * n) + j) * block) + k)
          (S.get buf ((((j * m) + i) * block) + k))
      done
    done
  done

let test_roundtrips () =
  (* applying a permutation then its inverse restores the tensor *)
  let inverse (p0, p1, p2) =
    let inv = Array.make 3 0 in
    inv.(p0) <- 0;
    inv.(p1) <- 1;
    inv.(p2) <- 2;
    (inv.(0), inv.(1), inv.(2))
  in
  let dims = (6, 5, 7) in
  List.iter
    (fun perm ->
      let d0, d1, d2 = dims in
      let buf = iota_buf (d0 * d1 * d2) in
      T.permute ~dims ~perm buf;
      let new_dims = T.permuted_dims ~dims ~perm in
      T.permute ~dims:new_dims ~perm:(inverse perm) buf;
      Alcotest.(check (list int)) "roundtrip"
        (List.init (d0 * d1 * d2) Fun.id)
        (buf_to_list buf))
    all_perms

let test_errors () =
  let buf = iota_buf 24 in
  Alcotest.check_raises "bad perm"
    (Invalid_argument "Tensor3.permute: perm must be a permutation of (0,1,2)")
    (fun () -> T.permute ~dims:(2, 3, 4) ~perm:(0, 0, 2) buf);
  Alcotest.check_raises "bad size"
    (Invalid_argument "Tensor3.permute: buffer size") (fun () ->
      T.permute ~dims:(2, 3, 5) ~perm:(1, 0, 2) buf)

let prop_random_tensors =
  QCheck2.Test.make ~name:"permute = reference on random shapes" ~count:100
    QCheck2.Gen.(
      pair
        (triple (int_range 1 12) (int_range 1 12) (int_range 1 12))
        (int_range 0 5))
    (fun (dims, pi) ->
      let perm = List.nth all_perms pi in
      let d0, d1, d2 = dims in
      let buf = iota_buf (d0 * d1 * d2) in
      T.permute ~dims ~perm buf;
      buf_to_list buf = reference ~dims ~perm)

let tests =
  [
    Alcotest.test_case "all perms, small shapes" `Quick
      test_all_perms_exhaustive_small;
    Alcotest.test_case "all perms, larger shapes" `Quick test_larger_shapes;
    Alcotest.test_case "batched transpose" `Quick test_batched;
    Alcotest.test_case "block transpose" `Quick test_blocks;
    Alcotest.test_case "inverse roundtrips" `Quick test_roundtrips;
    Alcotest.test_case "errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest prop_random_tensors;
  ]
