open Xpose_core

let test_small_divisors () =
  for d = 1 to 64 do
    let t = Magic.make d in
    Alcotest.(check int) "divisor" d (Magic.divisor t);
    for x = 0 to 2000 do
      if Magic.div t x <> x / d then
        Alcotest.failf "div %d / %d: got %d want %d" x d (Magic.div t x) (x / d);
      if Magic.modu t x <> x mod d then
        Alcotest.failf "mod %d %% %d" x d
    done
  done

let test_boundaries () =
  let xs = [ 0; 1; Magic.max_dividend; Magic.max_dividend - 1 ] in
  let ds = [ 1; 2; 3; 7; 1 lsl 20; Magic.max_dividend; Magic.max_dividend - 1 ] in
  List.iter
    (fun d ->
      let t = Magic.make d in
      List.iter
        (fun x ->
          Alcotest.(check int) (Printf.sprintf "%d/%d" x d) (x / d) (Magic.div t x);
          Alcotest.(check int) (Printf.sprintf "%d%%%d" x d) (x mod d) (Magic.modu t x))
        xs)
    ds

let test_invalid () =
  Alcotest.check_raises "zero divisor" (Invalid_argument "Magic.make: bad divisor")
    (fun () -> ignore (Magic.make 0));
  Alcotest.check_raises "negative divisor" (Invalid_argument "Magic.make: bad divisor")
    (fun () -> ignore (Magic.make (-3)));
  Alcotest.check_raises "huge divisor" (Invalid_argument "Magic.make: bad divisor")
    (fun () -> ignore (Magic.make (Magic.max_dividend + 1)))

let test_divmod () =
  let t = Magic.make 37 in
  for x = 0 to 5000 do
    let q, r = Magic.divmod t x in
    Alcotest.(check (pair int int)) "divmod" (x / 37, x mod 37) (q, r)
  done

let gen_divisor =
  (* Mix small divisors (the common case: matrix dims) with huge ones. *)
  QCheck2.Gen.(
    oneof
      [
        int_range 1 4096;
        int_range 1 Magic.max_dividend;
        map (fun k -> 1 lsl k) (int_range 0 29);
        map (fun k -> (1 lsl k) - 1) (int_range 1 30);
        map (fun k -> (1 lsl k) + 1) (int_range 1 29);
      ])

let prop_div_exact =
  QCheck2.Test.make ~name:"magic div/mod = / and mod" ~count:20000
    QCheck2.Gen.(pair gen_divisor (int_range 0 Magic.max_dividend))
    (fun (d, x) ->
      let t = Magic.make d in
      Magic.div t x = x / d && Magic.modu t x = x mod d)

let tests =
  [
    Alcotest.test_case "exhaustive small divisors" `Quick test_small_divisors;
    Alcotest.test_case "boundary dividends" `Quick test_boundaries;
    Alcotest.test_case "invalid divisors" `Quick test_invalid;
    Alcotest.test_case "divmod" `Quick test_divmod;
    QCheck_alcotest.to_alcotest prop_div_exact;
  ]
