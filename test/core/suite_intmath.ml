open Xpose_core

let check_int = Alcotest.(check int)

let test_emod_basic () =
  check_int "7 mod 3" 1 (Intmath.emod 7 3);
  check_int "-1 mod 3" 2 (Intmath.emod (-1) 3);
  check_int "-3 mod 3" 0 (Intmath.emod (-3) 3);
  check_int "-7 mod 3" 2 (Intmath.emod (-7) 3);
  check_int "0 mod 5" 0 (Intmath.emod 0 5)

let test_ediv_basic () =
  check_int "7 / 3" 2 (Intmath.ediv 7 3);
  check_int "-1 / 3" (-1) (Intmath.ediv (-1) 3);
  check_int "-7 / 3" (-3) (Intmath.ediv (-7) 3)

let test_gcd () =
  check_int "gcd 12 18" 6 (Intmath.gcd 12 18);
  check_int "gcd 3 8" 1 (Intmath.gcd 3 8);
  check_int "gcd 0 5" 5 (Intmath.gcd 0 5);
  check_int "gcd 5 0" 5 (Intmath.gcd 5 0);
  check_int "gcd 0 0" 0 (Intmath.gcd 0 0);
  check_int "gcd 24 36" 12 (Intmath.gcd 24 36)

let test_mmi () =
  check_int "mmi 3 8" 3 (Intmath.mmi 3 8);
  check_int "mmi 1 7" 1 (Intmath.mmi 1 7);
  check_int "mmi anything 1" 0 (Intmath.mmi 5 1);
  Alcotest.check_raises "mmi non-coprime" (Invalid_argument "Intmath.mmi: arguments not coprime")
    (fun () -> ignore (Intmath.mmi 4 8));
  Alcotest.check_raises "mmi bad modulus" (Invalid_argument "Intmath.mmi: modulus must be positive")
    (fun () -> ignore (Intmath.mmi 4 0))

let test_ceil_log2 () =
  check_int "1" 0 (Intmath.ceil_log2 1);
  check_int "2" 1 (Intmath.ceil_log2 2);
  check_int "3" 2 (Intmath.ceil_log2 3);
  check_int "1024" 10 (Intmath.ceil_log2 1024);
  check_int "1025" 11 (Intmath.ceil_log2 1025)

let test_ceil_div () =
  check_int "7/2" 4 (Intmath.ceil_div 7 2);
  check_int "8/2" 4 (Intmath.ceil_div 8 2);
  check_int "0/3" 0 (Intmath.ceil_div 0 3)

let test_lcm () =
  check_int "lcm 4 6" 12 (Intmath.lcm 4 6);
  check_int "lcm 3 8" 24 (Intmath.lcm 3 8);
  check_int "lcm 0 8" 0 (Intmath.lcm 0 8)

(* Properties *)

let prop_emod_range =
  QCheck2.Test.make ~name:"emod in [0,m) and division identity" ~count:1000
    QCheck2.Gen.(pair (int_range (-100000) 100000) (int_range 1 1000))
    (fun (x, m) ->
      let r = Intmath.emod x m in
      let q = Intmath.ediv x m in
      r >= 0 && r < m && (q * m) + r = x)

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both and is maximal-ish" ~count:1000
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let g = Intmath.gcd a b in
      g > 0 && a mod g = 0 && b mod g = 0
      && Intmath.gcd (a / g) (b / g) = 1)

let prop_egcd_bezout =
  QCheck2.Test.make ~name:"egcd Bezout identity" ~count:1000
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 100000))
    (fun (a, b) ->
      let g, u, v = Intmath.egcd a b in
      (a * u) + (b * v) = g && g = Intmath.gcd a b)

let prop_mmi =
  QCheck2.Test.make ~name:"mmi inverse property" ~count:1000
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 2 10000))
    (fun (x, y) ->
      QCheck2.assume (Intmath.is_coprime x y);
      let inv = Intmath.mmi x y in
      inv >= 0 && inv < y && Intmath.emod (x * inv) y = 1)

let prop_lcm_gcd =
  QCheck2.Test.make ~name:"lcm * gcd = a * b" ~count:500
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 1 10000))
    (fun (a, b) -> Intmath.lcm a b * Intmath.gcd a b = a * b)

let tests =
  [
    Alcotest.test_case "emod basics" `Quick test_emod_basic;
    Alcotest.test_case "ediv basics" `Quick test_ediv_basic;
    Alcotest.test_case "gcd" `Quick test_gcd;
    Alcotest.test_case "mmi" `Quick test_mmi;
    Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
    Alcotest.test_case "ceil_div" `Quick test_ceil_div;
    Alcotest.test_case "lcm" `Quick test_lcm;
    QCheck_alcotest.to_alcotest prop_emod_range;
    QCheck_alcotest.to_alcotest prop_gcd_divides;
    QCheck_alcotest.to_alcotest prop_egcd_bezout;
    QCheck_alcotest.to_alcotest prop_mmi;
    QCheck_alcotest.to_alcotest prop_lcm_gcd;
  ]
