open Xpose_core

let roundtrip (type b) (module M : Storage.S with type t = b) () =
  let buf = M.create 100 in
  Storage.fill_iota (module M) buf;
  Alcotest.(check int) "length" 100 (M.length buf);
  for l = 0 to 99 do
    Alcotest.(check int) "iota roundtrip" l (M.to_int (M.get buf l))
  done;
  (* blit a window onto itself shifted via a scratch buffer *)
  let tmp = M.create 10 in
  M.blit buf 40 tmp 0 10;
  M.blit tmp 0 buf 0 10;
  for l = 0 to 9 do
    Alcotest.(check int) "blit" (40 + l) (M.to_int (M.get buf l))
  done;
  Alcotest.(check bool) "equal refl" true (M.equal (M.get buf 5) (M.get buf 5));
  Alcotest.(check bool) "pp total" true
    (String.length (Format.asprintf "%a" M.pp (M.get buf 5)) > 0)

let test_elt_bytes () =
  Alcotest.(check int) "f64" 8 Storage.Float64.elt_bytes;
  Alcotest.(check int) "f32" 4 Storage.Float32.elt_bytes;
  Alcotest.(check int) "i32" 4 Storage.Int32_elt.elt_bytes;
  Alcotest.(check int) "i64" 8 Storage.Int64_elt.elt_bytes

let test_poly_values () =
  let module P = Storage.Poly () in
  let buf = P.create 4 in
  P.set buf 0 (P.of_value "hello");
  P.set buf 1 (P.of_value (3, "x"));
  Alcotest.(check string) "string through poly" "hello" (P.to_value (P.get buf 0));
  let a, b = P.to_value (P.get buf 1) in
  Alcotest.(check (pair int string)) "tuple" (3, "x") (a, b)

let test_blob_sizes () =
  List.iter
    (fun size ->
      let module B = Storage.Blob (struct
        let elt_bytes = size
      end) in
      let buf = B.create 50 in
      Storage.fill_iota (module B) buf;
      for l = 0 to 49 do
        Alcotest.(check int)
          (Printf.sprintf "blob%d roundtrip" size)
          l
          (B.to_int (B.get buf l))
      done;
      (* distinct payload bytes distinguish equal tags of different slots *)
      Alcotest.(check bool) "blob equal" true (B.equal (B.of_int 7) (B.of_int 7));
      Alcotest.(check bool) "blob differ" false (B.equal (B.of_int 7) (B.of_int 8)))
    [ 1; 3; 4; 8; 12; 16; 24; 32; 64 ]

let test_blob_large_tags () =
  let module B = Storage.Blob (struct
    let elt_bytes = 16
  end) in
  List.iter
    (fun v -> Alcotest.(check int) "tag" v (B.to_int (B.of_int v)))
    [ 0; 1; 255; 256; 65535; 1 lsl 40; (1 lsl 48) - 1 ]

let prop_blob_roundtrip =
  QCheck2.Test.make ~name:"blob of_int/to_int roundtrip" ~count:500
    QCheck2.Gen.(pair (int_range 1 64) (int_range 0 ((1 lsl 48) - 1)))
    (fun (size, v) ->
      let module B = Storage.Blob (struct
        let elt_bytes = size
      end) in
      let masked = if size >= 8 then v else v land ((1 lsl (8 * size)) - 1) in
      B.to_int (B.of_int masked) = masked)

let tests =
  [
    Alcotest.test_case "float64 roundtrip" `Quick (roundtrip (module Storage.Float64));
    Alcotest.test_case "float32 roundtrip" `Quick (roundtrip (module Storage.Float32));
    Alcotest.test_case "int64 roundtrip" `Quick (roundtrip (module Storage.Int64_elt));
    Alcotest.test_case "int32 roundtrip" `Quick (roundtrip (module Storage.Int32_elt));
    Alcotest.test_case "int roundtrip" `Quick (roundtrip (module Storage.Int_elt));
    Alcotest.test_case "elt sizes" `Quick test_elt_bytes;
    Alcotest.test_case "poly values" `Quick test_poly_values;
    Alcotest.test_case "blob sizes" `Quick test_blob_sizes;
    Alcotest.test_case "blob large tags" `Quick test_blob_large_tags;
    QCheck_alcotest.to_alcotest prop_blob_roundtrip;
  ]
