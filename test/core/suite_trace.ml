open Xpose_core

let check_mat msg expected actual =
  Alcotest.(check (list (list int)))
    msg
    (Array.to_list (Array.map Array.to_list expected))
    (Array.to_list (Array.map Array.to_list actual))

let test_iota () =
  check_mat "iota 2x3" [| [| 0; 1; 2 |]; [| 3; 4; 5 |] |] (Trace.iota ~m:2 ~n:3)

let find_step t label =
  match List.find_opt (fun s -> s.Trace.label = label) t.Trace.steps with
  | Some s -> s.Trace.state
  | None -> Alcotest.failf "missing step %S" label

(* Figure 2 of the paper: C2R transpose of the 4x8 matrix holding
   column-major numbering (A[i,j] = i + 4j), shown after each phase. *)
let fig2_initial = Array.init 4 (fun i -> Array.init 8 (fun j -> i + (4 * j)))

let fig2_after_rotate =
  [|
    [| 0; 4; 9; 13; 18; 22; 27; 31 |];
    [| 1; 5; 10; 14; 19; 23; 24; 28 |];
    [| 2; 6; 11; 15; 16; 20; 25; 29 |];
    [| 3; 7; 8; 12; 17; 21; 26; 30 |];
  |]

let fig2_after_row_shuffle =
  [|
    [| 0; 9; 18; 27; 4; 13; 22; 31 |];
    [| 24; 1; 10; 19; 28; 5; 14; 23 |];
    [| 16; 25; 2; 11; 20; 29; 6; 15 |];
    [| 8; 17; 26; 3; 12; 21; 30; 7 |];
  |]

let fig2_after_col_shuffle =
  Array.init 4 (fun i -> Array.init 8 (fun j -> (8 * i) + j))

let test_figure2 () =
  let t = Trace.c2r ~m:4 ~n:8 fig2_initial in
  check_mat "initial" fig2_initial (find_step t "initial");
  check_mat "column rotate" fig2_after_rotate (find_step t "column rotate");
  check_mat "row shuffle" fig2_after_row_shuffle (find_step t "row shuffle");
  check_mat "column shuffle" fig2_after_col_shuffle (find_step t "column shuffle");
  check_mat "final" fig2_after_col_shuffle (Trace.final t)

(* Figure 1: R2C of the 3x8 iota. *)
let fig1_right =
  [|
    [| 0; 3; 6; 9; 12; 15; 18; 21 |];
    [| 1; 4; 7; 10; 13; 16; 19; 22 |];
    [| 2; 5; 8; 11; 14; 17; 20; 23 |];
  |]

let test_figure1 () =
  let t = Trace.r2c ~m:3 ~n:8 (Trace.iota ~m:3 ~n:8) in
  check_mat "fig1 r2c" fig1_right (Trace.final t);
  (* and C2R brings it back *)
  let back = Trace.c2r ~m:3 ~n:8 fig1_right in
  check_mat "fig1 c2r inverse" (Trace.iota ~m:3 ~n:8) (Trace.final back)

let test_coprime_skips_rotation () =
  let t = Trace.c2r ~m:3 ~n:8 (Trace.iota ~m:3 ~n:8) in
  Alcotest.(check bool) "no rotate step" true
    (List.for_all (fun s -> s.Trace.label <> "column rotate") t.Trace.steps);
  let t' = Trace.c2r ~m:4 ~n:8 (Trace.iota ~m:4 ~n:8) in
  Alcotest.(check bool) "rotate step present" true
    (List.exists (fun s -> s.Trace.label = "column rotate") t'.Trace.steps)

let test_reinterpret () =
  let m = 4 and n = 8 in
  let t = Trace.c2r ~m ~n (Trace.iota ~m ~n) in
  let tr = Trace.reinterpret t in
  Alcotest.(check int) "rows" n (Array.length tr);
  Alcotest.(check int) "cols" m (Array.length tr.(0));
  let src = Trace.iota ~m ~n in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      Alcotest.(check int) "transposed entry" src.(j).(i) tr.(i).(j)
    done
  done

let contains ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let test_pp_smoke () =
  let t = Trace.c2r ~m:4 ~n:8 fig2_initial in
  let s = Format.asprintf "%a" Trace.pp t in
  Alcotest.(check bool) "mentions phases" true
    (String.length s > 0 && contains ~sub:"row shuffle" s)

let tests =
  [
    Alcotest.test_case "iota" `Quick test_iota;
    Alcotest.test_case "paper figure 2 (all phases)" `Quick test_figure2;
    Alcotest.test_case "paper figure 1" `Quick test_figure1;
    Alcotest.test_case "coprime skips rotation" `Quick test_coprime_skips_rotation;
    Alcotest.test_case "reinterpret" `Quick test_reinterpret;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
  ]
