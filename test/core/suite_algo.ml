open Xpose_core
module I = Instances.I
module S = Storage.Int_elt

let iota_buf len =
  let buf = S.create len in
  Storage.fill_iota (module S) buf;
  buf

let buf_to_list buf = List.init (S.length buf) (S.get buf)

let expected_transpose ~m ~n =
  (* Row-major linearization of the transpose of iota (the specification
     from Theorem 1). *)
  List.init (m * n) (fun l -> (n * (l mod m)) + (l / m))

let check_c2r variant m n =
  let p = Plan.make ~m ~n in
  let buf = iota_buf (m * n) in
  let tmp = S.create (Plan.scratch_elements p) in
  I.c2r ~variant p buf ~tmp;
  Alcotest.(check (list int))
    (Printf.sprintf "c2r %dx%d" m n)
    (expected_transpose ~m ~n) (buf_to_list buf)

let check_r2c_inverts variant m n =
  let p = Plan.make ~m ~n in
  let buf = iota_buf (m * n) in
  let tmp = S.create (Plan.scratch_elements p) in
  I.c2r p buf ~tmp;
  I.r2c ~variant p buf ~tmp;
  Alcotest.(check (list int))
    (Printf.sprintf "r2c . c2r = id %dx%d" m n)
    (List.init (m * n) Fun.id) (buf_to_list buf)

let test_exhaustive_small () =
  for m = 1 to 12 do
    for n = 1 to 12 do
      List.iter
        (fun v -> check_c2r v m n)
        [ Algo.C2r_scatter; Algo.C2r_gather; Algo.C2r_decomposed ];
      List.iter
        (fun v -> check_r2c_inverts v m n)
        [ Algo.R2c_fused; Algo.R2c_decomposed ]
    done
  done

let test_medium_shapes () =
  List.iter
    (fun (m, n) ->
      List.iter
        (fun v -> check_c2r v m n)
        [ Algo.C2r_scatter; Algo.C2r_gather; Algo.C2r_decomposed ];
      check_r2c_inverts Algo.R2c_fused m n)
    [ (3, 8); (4, 8); (100, 64); (63, 81); (128, 128); (1, 200); (200, 1); (97, 89); (96, 72) ]

let test_transpose_dispatch () =
  List.iter
    (fun (m, n) ->
      let buf = iota_buf (m * n) in
      let original = I.copy buf in
      I.transpose ~m ~n buf;
      Alcotest.(check bool)
        (Printf.sprintf "dispatch %dx%d" m n)
        true
        (I.is_transpose_of ~m ~n ~original buf))
    [ (30, 7); (7, 30); (12, 12); (1, 5); (5, 1); (50, 48); (48, 50) ]

let test_col_major () =
  (* A column-major m x n transpose must equal the out-of-place reference
     under the same interpretation. *)
  List.iter
    (fun (m, n) ->
      let buf = iota_buf (m * n) in
      let original = I.copy buf in
      I.transpose ~order:Layout.Col_major ~m ~n buf;
      Alcotest.(check bool)
        (Printf.sprintf "col-major %dx%d" m n)
        true
        (I.is_transpose_of ~order:Layout.Col_major ~m ~n ~original buf);
      (* and against the explicit reference *)
      let dst = S.create (m * n) in
      I.transpose_oop ~order:Layout.Col_major ~m ~n original dst;
      Alcotest.(check (list int)) "vs oop" (buf_to_list dst) (buf_to_list buf))
    [ (6, 9); (9, 6); (13, 4) ]

let test_explicit_algorithm_choice () =
  (* Theorems 1 and 2: both C2R and R2C transpose either storage order. *)
  List.iter
    (fun (m, n) ->
      List.iter
        (fun algorithm ->
          List.iter
            (fun order ->
              let buf = iota_buf (m * n) in
              let original = I.copy buf in
              let tmp = S.create (max m n) in
              I.transpose_with ~algorithm ~order ~m ~n buf ~tmp;
              Alcotest.(check bool)
                (Printf.sprintf "%s %dx%d"
                   (match algorithm with `C2r -> "c2r" | `R2c -> "r2c")
                   m n)
                true
                (I.is_transpose_of ~order ~m ~n ~original buf))
            [ Layout.Row_major; Layout.Col_major ])
        [ `C2r; `R2c ])
    [ (9, 21); (21, 9); (16, 16); (5, 11) ]

let test_paper_figure1 () =
  (* Fig. 1: m=3, n=8. C2R of the right-hand matrix gives the left-hand
     iota; equivalently C2R of iota(3x8) linearizes the transpose. *)
  let m = 3 and n = 8 in
  let p = Plan.make ~m ~n in
  let buf = iota_buf (m * n) in
  let tmp = S.create 8 in
  I.c2r p buf ~tmp;
  Alcotest.(check (list int)) "fig1 c2r"
    [ 0; 8; 16; 1; 9; 17; 2; 10; 18; 3; 11; 19; 4; 12; 20; 5; 13; 21; 6; 14; 22; 7; 15; 23 ]
    (buf_to_list buf)

let test_element_16_example () =
  (* §2 worked example: under R2C the element at (2,0) of the 3x8 iota
     lands at (1,5). R2C on plan (3,8) maps the row-major 8x3 transpose
     back to iota; equivalently scatter Eq. 14 applies. Check via the
     gather formulation on the result of c2r. *)
  let m = 3 and n = 8 in
  let p = Plan.make ~m ~n in
  let buf = iota_buf (m * n) in
  let tmp = S.create 8 in
  I.c2r p buf ~tmp;
  I.r2c p buf ~tmp;
  (* after the round trip value 16 is back at row 2, col 0 *)
  Alcotest.(check int) "16 home" 16 (S.get buf ((2 * n) + 0));
  (* and the R2C image of iota puts 16 at (1,5) as the paper computes *)
  let r2c_of_iota = Trace.final (Trace.r2c ~m ~n (Trace.iota ~m ~n)) in
  Alcotest.(check int) "16 at (1,5)" 16 r2c_of_iota.(1).(5)

let test_errors () =
  let p = Plan.make ~m:4 ~n:6 in
  let buf = iota_buf 23 in
  let tmp = S.create 6 in
  Alcotest.check_raises "short buffer"
    (Invalid_argument "Algo: buffer has 23 elements, plan needs 4 x 6")
    (fun () -> I.c2r p buf ~tmp);
  let buf = iota_buf 24 in
  let tiny = S.create 5 in
  Alcotest.check_raises "short scratch"
    (Invalid_argument "Algo: scratch has 5 elements, plan needs 6") (fun () ->
      I.r2c p buf ~tmp:tiny)

let test_poly_storage_arbitrary_values () =
  let module P = Storage.Poly () in
  let module A = Algo.Make (P) in
  let m = 7 and n = 10 in
  let buf = P.create (m * n) in
  for l = 0 to (m * n) - 1 do
    P.set buf l (P.of_value (string_of_int l, l * l))
  done;
  let original = A.copy buf in
  A.transpose ~m ~n buf;
  Alcotest.(check bool) "poly transpose" true
    (A.is_transpose_of ~m ~n ~original buf);
  let s, sq = P.to_value (P.get buf 1) in
  (* element (0,1) of the transpose = element (1,0) of the original = l=n *)
  Alcotest.(check (pair string int)) "value payload" (string_of_int n, n * n) (s, sq)

let test_blob_storage_transpose () =
  let module B = Storage.Blob (struct
    let elt_bytes = 24
  end) in
  let module A = Algo.Make (B) in
  let m = 9 and n = 15 in
  let buf = B.create (m * n) in
  Storage.fill_iota (module B) buf;
  let original = A.copy buf in
  A.transpose ~m ~n buf;
  Alcotest.(check bool) "blob transpose" true
    (A.is_transpose_of ~m ~n ~original buf)

let gen_dims =
  QCheck2.Gen.(
    oneof
      [
        pair (int_range 1 80) (int_range 1 80);
        map
          (fun ((a, b), c) -> (a * c, b * c))
          (pair (pair (int_range 1 16) (int_range 1 16)) (int_range 2 10));
      ])

let prop_c2r_equals_oop =
  QCheck2.Test.make ~name:"c2r = out-of-place transpose (all variants)"
    ~count:200 gen_dims (fun (m, n) ->
      let p = Plan.make ~m ~n in
      let expected = expected_transpose ~m ~n in
      List.for_all
        (fun variant ->
          let buf = iota_buf (m * n) in
          let tmp = S.create (Plan.scratch_elements p) in
          I.c2r ~variant p buf ~tmp;
          buf_to_list buf = expected)
        [ Algo.C2r_scatter; Algo.C2r_gather; Algo.C2r_decomposed ])

let prop_r2c_inverse =
  QCheck2.Test.make ~name:"r2c inverts c2r (all variants)" ~count:200 gen_dims
    (fun (m, n) ->
      let p = Plan.make ~m ~n in
      List.for_all
        (fun variant ->
          let buf = iota_buf (m * n) in
          let tmp = S.create (Plan.scratch_elements p) in
          I.c2r p buf ~tmp;
          I.r2c ~variant p buf ~tmp;
          buf_to_list buf = List.init (m * n) Fun.id)
        [ Algo.R2c_fused; Algo.R2c_decomposed ])

let prop_double_transpose_identity =
  QCheck2.Test.make ~name:"transpose twice = identity" ~count:200 gen_dims
    (fun (m, n) ->
      let buf = iota_buf (m * n) in
      I.transpose ~m ~n buf;
      I.transpose ~m:n ~n:m buf;
      buf_to_list buf = List.init (m * n) Fun.id)

let prop_random_contents =
  (* duplicate and arbitrary values: the permutation must not depend on
     the data *)
  QCheck2.Test.make ~name:"random contents transpose correctly" ~count:100
    QCheck2.Gen.(
      triple (int_range 1 40) (int_range 1 40)
        (array_size (return 1600) (int_range (-5) 5)))
    (fun (m, n, data) ->
      let buf = S.create (m * n) in
      for l = 0 to (m * n) - 1 do
        S.set buf l data.(l)
      done;
      let original = I.copy buf in
      I.transpose ~m ~n buf;
      I.is_transpose_of ~m ~n ~original buf)

let prop_f64_matches_int =
  QCheck2.Test.make ~name:"float64 instance permutes identically" ~count:100
    gen_dims (fun (m, n) ->
      let module F = Instances.F64 in
      let fbuf = Storage.Float64.create (m * n) in
      Storage.fill_iota (module Storage.Float64) fbuf;
      let original = F.copy fbuf in
      F.transpose ~m ~n fbuf;
      F.is_transpose_of ~m ~n ~original fbuf)

let tests =
  [
    Alcotest.test_case "exhaustive small dims, all variants" `Quick
      test_exhaustive_small;
    Alcotest.test_case "medium shapes" `Quick test_medium_shapes;
    Alcotest.test_case "dispatch heuristic" `Quick test_transpose_dispatch;
    Alcotest.test_case "column-major" `Quick test_col_major;
    Alcotest.test_case "explicit algorithm x order" `Quick
      test_explicit_algorithm_choice;
    Alcotest.test_case "paper figure 1" `Quick test_paper_figure1;
    Alcotest.test_case "paper element-16 example" `Quick test_element_16_example;
    Alcotest.test_case "argument validation" `Quick test_errors;
    Alcotest.test_case "poly storage" `Quick test_poly_storage_arbitrary_values;
    Alcotest.test_case "blob storage (24-byte structs)" `Quick
      test_blob_storage_transpose;
    QCheck_alcotest.to_alcotest prop_random_contents;
    QCheck_alcotest.to_alcotest prop_c2r_equals_oop;
    QCheck_alcotest.to_alcotest prop_r2c_inverse;
    QCheck_alcotest.to_alcotest prop_double_transpose_identity;
    QCheck_alcotest.to_alcotest prop_f64_matches_int;
  ]
