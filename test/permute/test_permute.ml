let () =
  Alcotest.run "xpose_permute"
    [
      ("shape", Suite_shape.tests);
      ("planner", Suite_planner.tests);
      ("exec", Suite_exec.tests);
    ]
