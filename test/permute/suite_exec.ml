open Xpose_permute
module Core = Xpose_core
module S = Xpose_core.Storage.Int_elt
module Nd = Xpose_core.Tensor_nd.Make (S)
module T3 = Xpose_core.Tensor3.Make (S)
module Pool = Xpose_cpu.Pool
module Par = Xpose_cpu.Par_permute.Make (S)

let rec perms = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest) (perms (List.filter (( <> ) x) l)))
        l

let all_perms r = List.map Array.of_list (perms (List.init r Fun.id))

let iota dims =
  let buf = S.create (Shape.nelems dims) in
  for i = 0 to S.length buf - 1 do
    S.set buf i (S.of_int i)
  done;
  buf

(* what the buffer must hold after permuting iota: element born at linear
   index l lands at permuted_index l *)
let expected ~dims ~perm =
  let total = Shape.nelems dims in
  let out = Array.make total 0 in
  for l = 0 to total - 1 do
    out.(Shape.permuted_index ~dims ~perm (Shape.multi_index ~dims l)) <- l
  done;
  out

let check_against_oracle ~msg ~dims ~perm buf =
  let want = expected ~dims ~perm in
  Array.iteri
    (fun i w ->
      if S.to_int (S.get buf i) <> w then
        Alcotest.failf "%s: dims %s perm %s: slot %d holds %d, want %d" msg
          (Format.asprintf "%a" Shape.pp_dims dims)
          (Format.asprintf "%a" Shape.pp_perm perm)
          i
          (S.to_int (S.get buf i))
          w)
    want

let gen_problem =
  QCheck2.Gen.(
    let* r = int_range 1 5 in
    let* dims = array_repeat r (int_range 1 6) in
    let* perm = shuffle_a (Array.init r Fun.id) in
    return (dims, perm))

let print_problem (dims, perm) =
  Format.asprintf "%a by %a" Shape.pp_dims dims Shape.pp_perm perm

let prop_serial_matches_oracle =
  QCheck2.Test.make ~name:"Tensor_nd.permute matches the oracle" ~count:300
    ~print:print_problem gen_problem (fun (dims, perm) ->
      let buf = iota dims in
      Nd.permute ~dims ~perm buf;
      let want = expected ~dims ~perm in
      let good = ref true in
      Array.iteri
        (fun i w -> if S.to_int (S.get buf i) <> w then good := false)
        want;
      !good)

let prop_inverse_roundtrip =
  QCheck2.Test.make ~name:"permute then inverse is the identity" ~count:200
    ~print:print_problem gen_problem (fun (dims, perm) ->
      let buf = iota dims in
      Nd.permute ~dims ~perm buf;
      Nd.permute
        ~dims:(Shape.permuted_dims ~dims ~perm)
        ~perm:(Shape.inverse perm) buf;
      let good = ref true in
      for i = 0 to S.length buf - 1 do
        if S.to_int (S.get buf i) <> i then good := false
      done;
      !good)

let prop_composition =
  (* permuting by p then by q equals permuting once by compose p q *)
  QCheck2.Test.make ~name:"composition of permutes" ~count:200
    QCheck2.Gen.(
      let* r = int_range 1 4 in
      let* dims = array_repeat r (int_range 1 5) in
      let* p = shuffle_a (Array.init r Fun.id) in
      let* q = shuffle_a (Array.init r Fun.id) in
      return (dims, p, q))
    (fun (dims, p, q) ->
      let a = iota dims in
      Nd.permute ~dims ~perm:p a;
      Nd.permute ~dims:(Shape.permuted_dims ~dims ~perm:p) ~perm:q a;
      let b = iota dims in
      Nd.permute ~dims ~perm:(Shape.compose ~first:p ~then_:q) b;
      let good = ref true in
      for i = 0 to S.length a - 1 do
        if S.to_int (S.get a i) <> S.to_int (S.get b i) then good := false
      done;
      !good)

let test_degenerate_shapes () =
  List.iter
    (fun (dims, perm) ->
      let buf = iota dims in
      Nd.permute ~dims ~perm buf;
      check_against_oracle ~msg:"degenerate" ~dims ~perm buf)
    [
      ([| 1 |], [| 0 |]);
      ([| 7 |], [| 0 |]);
      ([| 1; 1; 1; 1 |], [| 3; 1; 0; 2 |]);
      ([| 1; 6; 1 |], [| 2; 0; 1 |]);
      ([| 4; 4 |], [| 1; 0 |]) (* equal dims: gcd = m = n *);
      ([| 3; 3; 3 |], [| 2; 1; 0 |]);
      ([| 2; 1; 2; 1; 2 |], [| 4; 2; 0; 3; 1 |]);
    ]

let test_exhaustive_rank_le_4 () =
  (* every permutation of some awkward small shapes, serial execution *)
  List.iter
    (fun dims ->
      let r = Array.length dims in
      List.iter
        (fun perm ->
          let buf = iota dims in
          Nd.permute ~dims ~perm buf;
          check_against_oracle ~msg:"exhaustive" ~dims ~perm buf)
        (all_perms r))
    [ [| 2; 3 |]; [| 6; 4 |]; [| 2; 3; 4 |]; [| 5; 2; 5 |]; [| 2; 3; 4; 5 |]; [| 3; 1; 4; 2 |] ]

let test_execute_prebuilt_plan () =
  (* a plan is reusable data: build once, run on two buffers *)
  let dims = [| 4; 5; 6 |] and perm = [| 2; 0; 1 |] in
  let plan = Core.Tensor_nd.plan ~dims ~perm in
  let a = iota dims and b = iota dims in
  Nd.execute plan a;
  Nd.execute plan b;
  check_against_oracle ~msg:"execute a" ~dims ~perm a;
  check_against_oracle ~msg:"execute b" ~dims ~perm b

let test_errors () =
  let buf = iota [| 2; 3 |] in
  Alcotest.check_raises "buffer size"
    (Invalid_argument "Tensor_nd.permute: buffer size") (fun () ->
      Nd.permute ~dims:[| 2; 4 |] ~perm:[| 1; 0 |] buf);
  Alcotest.check_raises "bad perm"
    (Invalid_argument "Shape.validate: perm is not a permutation of the axes")
    (fun () -> Nd.permute ~dims:[| 2; 3 |] ~perm:[| 1; 1 |] buf);
  Alcotest.check_raises "transpose sizes"
    (Invalid_argument "Tensor_nd.transpose: sizes must be positive") (fun () ->
      Nd.transpose ~batch:1 ~rows:0 ~cols:3 ~block:1 buf)

let test_tensor3_delegates () =
  (* the refactored Tensor3.permute (through the planner) agrees with the
     original hand-written factorization on every rank-3 permutation *)
  let shapes = [ (2, 3, 4); (4, 6, 2); (5, 5, 5); (1, 7, 3); (8, 1, 1) ] in
  let perms3 =
    [ (0, 1, 2); (0, 2, 1); (1, 0, 2); (1, 2, 0); (2, 0, 1); (2, 1, 0) ]
  in
  List.iter
    (fun ((d0, d1, d2) as dims) ->
      List.iter
        (fun perm ->
          let n = d0 * d1 * d2 in
          let a = S.create n and b = S.create n in
          for i = 0 to n - 1 do
            S.set a i (S.of_int i);
            S.set b i (S.of_int i)
          done;
          T3.permute ~dims ~perm a;
          T3.permute_direct ~dims ~perm b;
          for i = 0 to n - 1 do
            if S.to_int (S.get a i) <> S.to_int (S.get b i) then
              Alcotest.failf
                "Tensor3 delegation disagrees with permute_direct at %d" i
          done)
        perms3)
    shapes

let test_parallel_matches_oracle () =
  Pool.with_pool ~workers:2 (fun pool ->
      List.iter
        (fun (dims, perm) ->
          let buf = iota dims in
          Par.permute pool ~dims ~perm buf;
          check_against_oracle ~msg:"parallel" ~dims ~perm buf)
        [
          ([| 12; 9 |], [| 1; 0 |]);
          ([| 2; 3; 4 |], [| 2; 1; 0 |]);
          ([| 6; 5; 4 |], [| 1; 0; 2 |]) (* block transpose path *);
          ([| 7; 3; 5 |], [| 0; 2; 1 |]) (* batched path *);
          ([| 3; 4; 5; 2 |], [| 3; 1; 0; 2 |]);
          ([| 2; 3; 2; 3; 2 |], [| 4; 0; 3; 1; 2 |]);
          ([| 1; 5; 1 |], [| 2; 1; 0 |]);
        ])

let prop_parallel_matches_serial =
  QCheck2.Test.make ~name:"Par_permute = Tensor_nd on random problems"
    ~count:60 ~print:print_problem gen_problem (fun (dims, perm) ->
      let a = iota dims and b = iota dims in
      Nd.permute ~dims ~perm a;
      Pool.with_pool ~workers:3 (fun pool -> Par.permute pool ~dims ~perm b);
      let good = ref true in
      for i = 0 to S.length a - 1 do
        if S.to_int (S.get a i) <> S.to_int (S.get b i) then good := false
      done;
      !good)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_serial_matches_oracle;
    QCheck_alcotest.to_alcotest prop_inverse_roundtrip;
    QCheck_alcotest.to_alcotest prop_composition;
    Alcotest.test_case "degenerate shapes" `Quick test_degenerate_shapes;
    Alcotest.test_case "all perms of small shapes" `Quick
      test_exhaustive_rank_le_4;
    Alcotest.test_case "prebuilt plan reuse" `Quick test_execute_prebuilt_plan;
    Alcotest.test_case "error reporting" `Quick test_errors;
    Alcotest.test_case "Tensor3 delegation = direct kernels" `Quick
      test_tensor3_delegates;
    Alcotest.test_case "pool-parallel against oracle" `Quick
      test_parallel_matches_oracle;
    QCheck_alcotest.to_alcotest prop_parallel_matches_serial;
  ]
