open Xpose_permute
module Core = Xpose_core

let rec perms = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest) (perms (List.filter (( <> ) x) l)))
        l

let all_perms r = List.map Array.of_list (perms (List.init r Fun.id))

(* distinct primes so no pair of axes ever fuses by accident and every
   dimension is identifiable in a pass shape *)
let prime_dims r = Array.sub [| 2; 3; 5; 7; 11 |] 0 r

let test_identity_is_free () =
  List.iter
    (fun (dims, perm) ->
      let p = Permute.plan ~dims ~perm () in
      Alcotest.(check int) "no passes" 0 p.Permute.cost.Cost.passes;
      Alcotest.(check int) "no touches" 0 p.Permute.cost.Cost.touches;
      Alcotest.(check int) "no steps" 0 (List.length p.Permute.steps))
    [
      ([| 4; 5; 6 |], [| 0; 1; 2 |]);
      ([| 7 |], [| 0 |]);
      ([| 1; 9; 1 |], [| 2; 1; 0 |]) (* only size-1 axes move *);
      ([| 1; 1; 1; 1 |], [| 3; 0; 2; 1 |]);
    ]

(* simulate a pass sequence on linear indices and compare against the
   permuted_index oracle: proves a candidate is a correct factorization
   without touching any storage *)
let steps_realize_perm ~dims ~perm steps =
  let total = Shape.nelems dims in
  let pos = Array.init total Fun.id in
  (* pos.(l) = current linear position of the element born at l *)
  List.iter
    (fun { Decompose.pass = { Decompose.batch = _; rows; cols; block }; _ } ->
      for e = 0 to total - 1 do
        let cur = pos.(e) in
        let blk = cur mod block in
        let rest = cur / block in
        let c = rest mod cols in
        let rest = rest / cols in
        let r = rest mod rows in
        let b = rest / rows in
        pos.(e) <- (((((b * cols) + c) * rows) + r) * block) + blk
      done)
    steps;
  let ok = ref true in
  for l = 0 to total - 1 do
    let idx = Shape.multi_index ~dims l in
    if pos.(l) <> Shape.permuted_index ~dims ~perm idx then ok := false
  done;
  !ok

let test_pass_bound_and_correctness () =
  (* acceptance criterion: <= 3 primitive passes after fusion for every
     permutation of rank <= 5; and every candidate actually realizes the
     requested permutation *)
  List.iter
    (fun r ->
      let dims = prime_dims r in
      List.iter
        (fun perm ->
          let cands = Permute.candidates ~dims ~perm () in
          Alcotest.(check bool) "has candidates" true (cands <> []);
          List.iter
            (fun (p : Permute.plan) ->
              let npass = List.length p.Permute.steps in
              if npass > 3 then
                Alcotest.failf "rank %d perm %s: %d passes" r
                  (Format.asprintf "%a" Shape.pp_perm perm)
                  npass;
              Alcotest.(check bool)
                "candidate realizes the permutation" true
                (steps_realize_perm ~dims ~perm p.Permute.steps))
            cands)
        (all_perms r))
    [ 2; 3; 4; 5 ]

let test_rank3_matches_diameter () =
  (* normalized rank 3 needs at most 2 passes (transposition diameter) *)
  let dims = prime_dims 3 in
  List.iter
    (fun perm ->
      let p = Permute.plan ~dims ~perm () in
      Alcotest.(check bool)
        "rank-3 plan has <= 2 passes" true
        (List.length p.Permute.steps <= 2))
    (all_perms 3)

let test_fusion_finds_single_flat_pass () =
  (* (2,0,1) and (1,2,0) on rank 3 are single flat transposes in disguise *)
  List.iter
    (fun (perm, rows, cols) ->
      let p = Permute.plan ~dims:[| 2; 3; 4 |] ~perm () in
      match p.Permute.steps with
      | [ { Decompose.pass; _ } ] ->
          Alcotest.(check int) "batch" 1 pass.Decompose.batch;
          Alcotest.(check int) "block" 1 pass.Decompose.block;
          Alcotest.(check int) "rows" rows pass.Decompose.rows;
          Alcotest.(check int) "cols" cols pass.Decompose.cols
      | steps -> Alcotest.failf "expected 1 pass, got %d" (List.length steps))
    [ ([| 2; 0; 1 |], 6, 4); ([| 1; 2; 0 |], 2, 12) ]

let test_plan_is_cheapest () =
  List.iter
    (fun r ->
      let dims = prime_dims r in
      List.iter
        (fun perm ->
          match Permute.candidates ~dims ~perm () with
          | [] -> Alcotest.fail "no candidates"
          | best :: rest ->
              List.iter
                (fun (c : Permute.plan) ->
                  Alcotest.(check bool)
                    "head is cheapest" true
                    (Cost.compare best.Permute.cost c.Permute.cost <= 0))
                rest)
        (all_perms r))
    [ 3; 4 ]

let test_plan_arith_matches_theory () =
  (* the O(1) closed form fed to the planner equals the instrumented
     Theorem 6 count from lib/core/theory.ml *)
  for m = 2 to 24 do
    for n = 2 to m do
      let p = Core.Plan.make ~m ~n in
      let work, space = Core.Theory.theorem6_work_and_space p in
      Alcotest.(check int)
        (Printf.sprintf "touches %dx%d" m n)
        work
        (Core.Tensor_nd.plan_arith.Cost.transpose_touches ~m ~n);
      Alcotest.(check int)
        (Printf.sprintf "scratch %dx%d" m n)
        space
        (Core.Tensor_nd.plan_arith.Cost.transpose_scratch ~m ~n)
    done
  done

let test_default_arith_matches_theory () =
  (* Cost.theorem6_arith restates the same closed form *)
  for m = 2 to 24 do
    for n = 2 to m do
      let p = Core.Plan.make ~m ~n in
      let work, _ = Core.Theory.theorem6_work_and_space p in
      Alcotest.(check int)
        (Printf.sprintf "touches %dx%d" m n)
        work
        (Cost.theorem6_arith.Cost.transpose_touches ~m ~n)
    done
  done

let test_aos_soa_is_single_pass () =
  (* NCHW -> NHWC: H and W fuse, one batched transpose remains *)
  let p = Permute.plan ~dims:[| 8; 3; 5; 7 |] ~perm:[| 0; 2; 3; 1 |] () in
  match p.Permute.steps with
  | [ { Decompose.pass; _ } ] ->
      Alcotest.(check int) "batch" 8 pass.Decompose.batch;
      Alcotest.(check int) "rows" 3 pass.Decompose.rows;
      Alcotest.(check int) "cols" 35 pass.Decompose.cols;
      Alcotest.(check int) "block" 1 pass.Decompose.block
  | steps -> Alcotest.failf "expected 1 pass, got %d" (List.length steps)

let test_blocked_beats_flat_on_score () =
  (* (1,0,2) moves whole rows of the last axis: the planner must keep the
     contiguous block (block transpose) rather than flatten it away *)
  let p = Permute.plan ~dims:[| 16; 16; 8 |] ~perm:[| 1; 0; 2 |] () in
  match p.Permute.steps with
  | [ { Decompose.pass; _ } ] ->
      Alcotest.(check int) "block" 8 pass.Decompose.block;
      Alcotest.(check int) "rows" 16 pass.Decompose.rows
  | steps -> Alcotest.failf "expected 1 pass, got %d" (List.length steps)

let test_high_rank_constructive () =
  (* above the search rank limit the constructive fallback still returns
     a correct sequence of at most rank-1 passes *)
  let dims = [| 2; 3; 2; 3; 2; 3; 2; 3 |] in
  let perm = [| 7; 5; 3; 1; 6; 4; 2; 0 |] in
  Shape.validate ~dims ~perm;
  let p = Permute.plan ~dims ~perm () in
  let n = Shape.normalize ~dims ~perm in
  Alcotest.(check bool)
    "passes <= normalized rank - 1" true
    (List.length p.Permute.steps <= Shape.rank n.Shape.dims - 1);
  Alcotest.(check bool)
    "constructive sequence is correct" true
    (steps_realize_perm ~dims ~perm p.Permute.steps)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_pp_plan_smoke () =
  let p = Permute.plan ~dims:[| 2; 3; 4 |] ~perm:[| 2; 1; 0 |] () in
  let s = Format.asprintf "%a" Permute.pp_plan p in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "plan mentions %S" sub) true
        (contains_sub s sub))
    [ "2x3x4"; "(2,1,0)"; "predicted" ]

let tests =
  [
    Alcotest.test_case "identity after fusion is free" `Quick
      test_identity_is_free;
    Alcotest.test_case "<= 3 passes and correct, all perms rank <= 5" `Quick
      test_pass_bound_and_correctness;
    Alcotest.test_case "rank 3 within diameter 2" `Quick
      test_rank3_matches_diameter;
    Alcotest.test_case "fusion finds the flat transpose" `Quick
      test_fusion_finds_single_flat_pass;
    Alcotest.test_case "plan head is cheapest candidate" `Quick
      test_plan_is_cheapest;
    Alcotest.test_case "plan_arith = theorem6_work_and_space" `Quick
      test_plan_arith_matches_theory;
    Alcotest.test_case "theorem6_arith = theorem6_work_and_space" `Quick
      test_default_arith_matches_theory;
    Alcotest.test_case "NCHW->NHWC is one batched pass" `Quick
      test_aos_soa_is_single_pass;
    Alcotest.test_case "planner keeps contiguous blocks" `Quick
      test_blocked_beats_flat_on_score;
    Alcotest.test_case "constructive fallback above rank limit" `Quick
      test_high_rank_constructive;
    Alcotest.test_case "pp_plan smoke" `Quick test_pp_plan_smoke;
  ]
