open Xpose_permute

let arr = Alcotest.(array int)

(* all permutations of [0 .. r-1], lexicographic *)
let rec perms = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest) (perms (List.filter (( <> ) x) l)))
        l

let all_perms r = List.map Array.of_list (perms (List.init r Fun.id))

let test_validate () =
  Shape.validate ~dims:[| 2; 3 |] ~perm:[| 1; 0 |];
  Shape.validate ~dims:[| 5 |] ~perm:[| 0 |];
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Shape.validate: perm and dims must have the same rank")
    (fun () -> Shape.validate ~dims:[| 2; 3 |] ~perm:[| 0 |]);
  Alcotest.check_raises "bad dim"
    (Invalid_argument "Shape.validate: dimensions must be positive") (fun () ->
      Shape.validate ~dims:[| 2; 0 |] ~perm:[| 0; 1 |]);
  Alcotest.check_raises "not a perm"
    (Invalid_argument "Shape.validate: perm is not a permutation of the axes")
    (fun () -> Shape.validate ~dims:[| 2; 3 |] ~perm:[| 0; 0 |])

let test_inverse_compose () =
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          let inv = Shape.inverse p in
          Alcotest.check arr "p . p^-1 = id"
            (Shape.identity r)
            (Shape.compose ~first:p ~then_:inv);
          Alcotest.check arr "p^-1 . p = id"
            (Shape.identity r)
            (Shape.compose ~first:inv ~then_:p))
        (all_perms r))
    [ 1; 2; 3; 4 ]

let test_linear_roundtrip () =
  let dims = [| 3; 4; 5 |] in
  for l = 0 to Shape.nelems dims - 1 do
    Alcotest.(check int)
      "linear . multi = id" l
      (Shape.linear_index ~dims (Shape.multi_index ~dims l))
  done

let test_permuted_index_matches_tensor3 () =
  (* the rank-N oracle must agree with the rank-3 oracle of Tensor3 *)
  let module T3 = Xpose_core.Tensor3.Make (Xpose_core.Storage.Int_elt) in
  let dims3 = (3, 4, 5) and dims = [| 3; 4; 5 |] in
  List.iter
    (fun perm ->
      let p0 = perm.(0) and p1 = perm.(1) and p2 = perm.(2) in
      for i0 = 0 to 2 do
        for i1 = 0 to 3 do
          for i2 = 0 to 4 do
            Alcotest.(check int)
              "oracles agree"
              (T3.permuted_index ~dims:dims3 ~perm:(p0, p1, p2) (i0, i1, i2))
              (Shape.permuted_index ~dims ~perm [| i0; i1; i2 |])
          done
        done
      done)
    (all_perms 3)

let check_normalized ~dims ~perm (ndims, nperm) =
  let n = Shape.normalize ~dims ~perm in
  Alcotest.check arr "normalized dims" ndims n.Shape.dims;
  Alcotest.check arr "normalized perm" nperm n.Shape.perm

let test_normalize_cases () =
  (* identity fuses completely *)
  check_normalized ~dims:[| 2; 3; 4 |] ~perm:[| 0; 1; 2 |] ([| 24 |], [| 0 |]);
  (* (2,0,1): leading pair stays adjacent -> rank 2 *)
  check_normalized ~dims:[| 2; 3; 4 |] ~perm:[| 2; 0; 1 |] ([| 6; 4 |], [| 1; 0 |]);
  (* (1,2,0): trailing pair stays adjacent -> rank 2 *)
  check_normalized ~dims:[| 2; 3; 4 |] ~perm:[| 1; 2; 0 |] ([| 2; 12 |], [| 1; 0 |]);
  (* (2,1,0) has nothing to fuse *)
  check_normalized ~dims:[| 2; 3; 4 |] ~perm:[| 2; 1; 0 |]
    ([| 2; 3; 4 |], [| 2; 1; 0 |]);
  (* size-1 axes vanish *)
  check_normalized ~dims:[| 2; 1; 3 |] ~perm:[| 0; 2; 1 |] ([| 6 |], [| 0 |]);
  check_normalized ~dims:[| 1; 1; 1 |] ~perm:[| 2; 0; 1 |] ([||], [||]);
  (* dropping a size-1 axis can enable a fusion across it *)
  check_normalized ~dims:[| 2; 1; 3; 4 |] ~perm:[| 3; 0; 2; 1 |]
    ([| 6; 4 |], [| 1; 0 |]);
  (* NCHW -> NHWC: H and W stay fused *)
  check_normalized ~dims:[| 8; 3; 5; 7 |] ~perm:[| 0; 2; 3; 1 |]
    ([| 8; 3; 35 |], [| 0; 2; 1 |])

let test_normalize_groups_cover () =
  (* groups partition the non-unit axes and their products give the dims *)
  let dims = [| 2; 1; 3; 4; 5 |] and perm = [| 3; 4; 0; 2; 1 |] in
  let n = Shape.normalize ~dims ~perm in
  let covered = Array.concat (Array.to_list n.Shape.groups) in
  let sorted = Array.copy covered in
  Array.sort compare sorted;
  Alcotest.check arr "covers non-unit axes" [| 0; 2; 3; 4 |] sorted;
  Array.iteri
    (fun g members ->
      Alcotest.(check int)
        "group product"
        n.Shape.dims.(g)
        (Array.fold_left (fun acc ax -> acc * dims.(ax)) 1 members))
    n.Shape.groups

let prop_normalize_preserves_oracle =
  (* moving an element through the normalized problem lands where the
     original oracle says it should *)
  QCheck2.Test.make ~name:"normalization preserves the permutation" ~count:200
    QCheck2.Gen.(
      let* r = int_range 1 5 in
      let* dims = array_repeat r (int_range 1 4) in
      let* perm = shuffle_a (Array.init r Fun.id) in
      return (dims, perm))
    (fun (dims, perm) ->
      let n = Shape.normalize ~dims ~perm in
      let total = Shape.nelems dims in
      Shape.nelems n.Shape.dims = total
      && List.for_all
           (fun l ->
             let idx = Shape.multi_index ~dims l in
             let via_original = Shape.permuted_index ~dims ~perm idx in
             (* map l through the normalized problem: positions agree *)
             let nl =
               if Array.length n.Shape.dims = 0 then 0
               else
                 Shape.permuted_index ~dims:n.Shape.dims ~perm:n.Shape.perm
                   (Shape.multi_index ~dims:n.Shape.dims l)
             in
             nl = via_original)
           (List.init total Fun.id))

let tests =
  [
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "inverse/compose" `Quick test_inverse_compose;
    Alcotest.test_case "linear index roundtrip" `Quick test_linear_roundtrip;
    Alcotest.test_case "oracle matches Tensor3" `Quick
      test_permuted_index_matches_tensor3;
    Alcotest.test_case "normalization cases" `Quick test_normalize_cases;
    Alcotest.test_case "normalization groups" `Quick test_normalize_groups_cover;
    QCheck_alcotest.to_alcotest prop_normalize_preserves_oracle;
  ]
