open Xpose_ooc

let temp_path () = Filename.temp_file "xpose_ooc" ".mat"

let with_file ~elements f =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Xpose_mmap.File_matrix.create ~path ~elements;
      Xpose_mmap.File_matrix.with_map ~path (fun buf ->
          Xpose_core.Storage.fill_iota (module Xpose_core.Storage.Float64) buf);
      f path)

let check_transposed ~m ~n path =
  Xpose_mmap.File_matrix.with_map ~write:false ~path (fun buf ->
      let ok = ref true in
      for l = 0 to (m * n) - 1 do
        let expected = float_of_int ((n * (l mod m)) + (l / m)) in
        if Bigarray.Array1.get buf l <> expected then ok := false
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%dx%d matches the in-RAM oracle bit-for-bit" m n)
        true !ok)

(* -- window geometry ------------------------------------------------------- *)

let test_window_split () =
  let ws = Window.split ~total:10 ~per:3 in
  Alcotest.(check (list (pair int int)))
    "split 10 by 3"
    [ (0, 3); (3, 6); (6, 9); (9, 10) ]
    (List.map (fun w -> (w.Window.lo, w.Window.hi)) ws);
  Alcotest.(check int) "clamped per" 7
    (List.length (Window.split ~total:7 ~per:0));
  Alcotest.(check (list (pair int int))) "empty range" []
    (List.map (fun w -> (w.Window.lo, w.Window.hi)) (Window.split ~total:0 ~per:4));
  (* exact disjoint cover, for a spread of totals and windows *)
  List.iter
    (fun (total, per) ->
      let ws = Window.split ~total ~per in
      let covered = ref 0 in
      List.iter
        (fun w ->
          Alcotest.(check int) "windows are adjacent" !covered w.Window.lo;
          Alcotest.(check bool) "window is non-empty" true (w.Window.hi > w.Window.lo);
          covered := w.Window.hi)
        ws;
      Alcotest.(check int) "windows cover the range" total !covered)
    [ (1, 1); (1, 100); (17, 4); (64, 64); (65, 64); (1000, 7) ]

let test_overlapping_split () =
  let ws = Window.overlapping_split ~total:10 ~per:4 in
  Alcotest.(check (list (pair int int)))
    "every window but the last grabs one extra unit"
    [ (0, 5); (4, 9); (8, 10) ]
    (List.map (fun w -> (w.Window.lo, w.Window.hi)) ws)

let test_window_sizing () =
  Alcotest.(check int) "budget_elems" 2048 (Window.budget_elems ~window_bytes:16384);
  Alcotest.(check int) "budget floor" 1 (Window.budget_elems ~window_bytes:3);
  Alcotest.(check int) "row_rows double-buffers" 12
    (Window.row_rows ~budget_elems:2048 ~n:80);
  Alcotest.(check int) "row_rows floor" 1 (Window.row_rows ~budget_elems:10 ~n:80);
  Alcotest.(check int) "panel_cols quarters the budget" 5
    (Window.panel_cols ~budget_elems:2048 ~m:96);
  Alcotest.(check int) "stripe_rows" 6 (Window.stripe_rows ~budget_elems:2048 ~n:80)

(* -- the I/O domain -------------------------------------------------------- *)

let test_io_domain_order () =
  Io_domain.with_io (fun io ->
      let log = ref [] in
      let jobs =
        List.map
          (fun k -> Io_domain.async io (fun () -> log := k :: !log))
          [ 1; 2; 3; 4 ]
      in
      List.iter (fun j -> ignore (Io_domain.await j)) jobs;
      Alcotest.(check (list int)) "jobs ran in submission order" [ 4; 3; 2; 1 ] !log)

let test_io_domain_hit_detection () =
  Io_domain.with_io (fun io ->
      let slow = Io_domain.async io (fun () -> Unix.sleepf 0.2) in
      Alcotest.(check bool) "a running job is a prefetch miss" false
        (Io_domain.await slow);
      let fast = Io_domain.async io (fun () -> ()) in
      Unix.sleepf 0.1;
      Alcotest.(check bool) "a finished job is a prefetch hit" true
        (Io_domain.await fast))

let test_io_domain_exception () =
  Io_domain.with_io (fun io ->
      let job = Io_domain.async io (fun () -> failwith "boom") in
      Alcotest.check_raises "job exceptions surface at await" (Failure "boom")
        (fun () -> ignore (Io_domain.await job));
      (* the domain survives a failed job *)
      let ok = Io_domain.async io (fun () -> ()) in
      ignore (Io_domain.await ok))

(* Stop while a job is in flight and more are queued: the draining stop
   must run everything (no lost scatter-backs), not deadlock, and stay
   idempotent. The in-flight job is gated so the stop provably overlaps
   it. *)
let test_io_domain_drain_stop () =
  let io = Io_domain.create () in
  let started = Atomic.make false and gate = Atomic.make false in
  let count = Atomic.make 0 in
  let j1 =
    Io_domain.async io (fun () ->
        Atomic.set started true;
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        Atomic.incr count)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let queued =
    List.init 8 (fun _ -> Io_domain.async io (fun () -> Atomic.incr count))
  in
  (* stop joins the worker, so issue it while j1 is still blocked and
     release the gate afterwards — if stop dropped queued jobs or
     deadlocked, the join below would hang or the count would fall
     short. *)
  let stopper = Thread.create (fun () -> Io_domain.stop io) () in
  Atomic.set gate true;
  Thread.join stopper;
  Alcotest.(check int) "in-flight and queued jobs all ran" 9
    (Atomic.get count);
  ignore (Io_domain.await j1);
  List.iter (fun j -> ignore (Io_domain.await j)) queued;
  (* idempotent: a second stop (and a cancelling one) return at once *)
  Io_domain.stop io;
  Io_domain.stop ~drain:false io;
  Alcotest.check_raises "async after stop is refused"
    (Invalid_argument "Io_domain.async: domain was shut down") (fun () ->
      ignore (Io_domain.async io (fun () -> ())))

(* Cancelling stop: queued-but-unstarted jobs are discarded and their
   awaiters raise [Cancelled_job]; the job the worker is executing still
   completes. Deterministic: the worker is pinned inside j1 until the
   cancellation has been observed, so j2/j3 cannot have started. *)
let test_io_domain_cancel_stop () =
  let io = Io_domain.create () in
  let started = Atomic.make false and release = Atomic.make false in
  let ran = Atomic.make 0 in
  let j1 =
    Io_domain.async io (fun () ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let j2 = Io_domain.async io (fun () -> Atomic.incr ran) in
  let j3 = Io_domain.async io (fun () -> Atomic.incr ran) in
  let stopper = Thread.create (fun () -> Io_domain.stop ~drain:false io) () in
  Alcotest.check_raises "first queued job cancelled" Io_domain.Cancelled_job
    (fun () -> ignore (Io_domain.await j2));
  Alcotest.check_raises "second queued job cancelled" Io_domain.Cancelled_job
    (fun () -> ignore (Io_domain.await j3));
  Atomic.set release true;
  Thread.join stopper;
  Alcotest.(check bool) "in-flight job ran to completion" true
    (Io_domain.await j1);
  Alcotest.(check int) "cancelled jobs never executed" 0 (Atomic.get ran);
  Io_domain.stop ~drain:false io (* idempotent *)

(* -- out-of-core transposition vs the in-RAM oracle ------------------------ *)

(* Shapes covering every structural regime: degenerate (identity),
   coprime and non-coprime on both C2R and R2C sides, prime x prime, and
   panel/window counts that are not multiples of the worker count. *)
let oracle_shapes =
  [ (1, 64); (64, 1); (29, 31); (31, 29); (32, 48); (48, 36); (97, 89); (16, 33) ]

let run_oracle ~prefetch ~workers () =
  List.iter
    (fun (m, n) ->
      with_file ~elements:(m * n) (fun path ->
          (* >= 4 windows whenever any pass runs at all *)
          let window_bytes = max 8 (m * n * 8 / 5) in
          let go pool =
            Ooc_f64.transpose_file ~pool ~window_bytes ~prefetch ~path ~m ~n ()
          in
          (if workers = 1 then go Xpose_cpu.Pool.sequential
           else Xpose_cpu.Pool.with_pool ~workers go);
          check_transposed ~m ~n path))
    oracle_shapes

let test_fits_in_window () =
  List.iter
    (fun (m, n) ->
      with_file ~elements:(m * n) (fun path ->
          Ooc_f64.transpose_file ~path ~m ~n ();
          check_transposed ~m ~n path))
    [ (32, 48); (29, 31) ]

let test_col_major_order () =
  let m = 36 and n = 48 in
  with_file ~elements:(m * n) (fun path ->
      (* col-major m x n is row-major n x m over the same bytes *)
      let window_bytes = m * n * 8 / 5 in
      Ooc_f64.transpose_file ~order:Xpose_core.Layout.Col_major ~window_bytes
        ~path ~m ~n ();
      check_transposed ~m:n ~n:m path)

(* -- residency and prefetch accounting ------------------------------------- *)

let test_bounded_residency () =
  Xpose_obs.Metrics.reset ();
  let m = 96 and n = 80 in
  let window_bytes = 16384 in
  with_file ~elements:(m * n) (fun path ->
      Xpose_cpu.Pool.with_pool ~workers:3 (fun pool ->
          Ooc_f64.transpose_file ~pool ~window_bytes ~path ~m ~n ());
      check_transposed ~m ~n path);
  let peak =
    Xpose_obs.Metrics.gauge_value (Xpose_obs.Metrics.gauge "ooc.window_peak_bytes")
  in
  Alcotest.(check bool) "peak resident bytes are recorded" true (peak > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "peak %.0f stays within the %d-byte budget" peak window_bytes)
    true
    (peak <= float_of_int window_bytes);
  let counter name =
    Xpose_obs.Metrics.counter_value (Xpose_obs.Metrics.counter name)
  in
  Alcotest.(check bool) "file is 4x the budget => several windows" true
    (counter "ooc.windows" > 4);
  Alcotest.(check bool) "bytes_mapped counts total window traffic" true
    (counter "ooc.bytes_mapped" > m * n * 8);
  Alcotest.(check bool) "every window was either a hit or a wait" true
    (counter "ooc.prefetch_hits" + counter "ooc.prefetch_waits" > 0)

let test_no_prefetch_counters () =
  Xpose_obs.Metrics.reset ();
  let m = 48 and n = 36 in
  with_file ~elements:(m * n) (fun path ->
      Ooc_f64.transpose_file ~window_bytes:(m * n * 8 / 4) ~prefetch:false ~path
        ~m ~n ();
      check_transposed ~m ~n path);
  let counter name =
    Xpose_obs.Metrics.counter_value (Xpose_obs.Metrics.counter name)
  in
  Alcotest.(check int) "no prefetch, no hits" 0 (counter "ooc.prefetch_hits");
  Alcotest.(check int) "no prefetch, no waits" 0 (counter "ooc.prefetch_waits")

(* -- error paths ----------------------------------------------------------- *)

let test_errors () =
  with_file ~elements:12 (fun path ->
      Alcotest.check_raises "length mismatch"
        (Invalid_argument "Ooc_f64.transpose_file: file does not hold m*n elements")
        (fun () -> Ooc_f64.transpose_file ~path ~m:5 ~n:3 ());
      Alcotest.check_raises "bad dimensions"
        (Invalid_argument "Ooc_f64.transpose_file: dimensions must be positive")
        (fun () -> Ooc_f64.transpose_file ~path ~m:0 ~n:12 ());
      Alcotest.check_raises "bad window budget"
        (Invalid_argument "Ooc_f64.transpose_file: window_bytes must be at least 8")
        (fun () -> Ooc_f64.transpose_file ~window_bytes:7 ~path ~m:4 ~n:3 ()))

let () =
  Alcotest.run "xpose_ooc"
    [
      ( "window",
        [
          Alcotest.test_case "split" `Quick test_window_split;
          Alcotest.test_case "overlapping split (seeded)" `Quick
            test_overlapping_split;
          Alcotest.test_case "budget sizing" `Quick test_window_sizing;
        ] );
      ( "io_domain",
        [
          Alcotest.test_case "submission order" `Quick test_io_domain_order;
          Alcotest.test_case "hit detection" `Quick test_io_domain_hit_detection;
          Alcotest.test_case "exception propagation" `Quick
            test_io_domain_exception;
          Alcotest.test_case "draining stop with in-flight job" `Quick
            test_io_domain_drain_stop;
          Alcotest.test_case "cancelling stop" `Quick
            test_io_domain_cancel_stop;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "sequential, prefetch" `Quick
            (run_oracle ~prefetch:true ~workers:1);
          Alcotest.test_case "sequential, no prefetch" `Quick
            (run_oracle ~prefetch:false ~workers:1);
          Alcotest.test_case "3 workers, prefetch" `Quick
            (run_oracle ~prefetch:true ~workers:3);
          Alcotest.test_case "3 workers, no prefetch" `Quick
            (run_oracle ~prefetch:false ~workers:3);
          Alcotest.test_case "fits in one window" `Quick test_fits_in_window;
          Alcotest.test_case "column-major order" `Quick test_col_major_order;
        ] );
      ( "residency",
        [
          Alcotest.test_case "bounded residency" `Quick test_bounded_residency;
          Alcotest.test_case "no-prefetch counters" `Quick
            test_no_prefetch_counters;
        ] );
      ("errors", [ Alcotest.test_case "invalid arguments" `Quick test_errors ]);
    ]
