open Xpose_obs

(* A minimal JSON parser — deliberately written here, with no library
   help, so the trace sink is validated against an independent reading of
   the format rather than against itself. Supports exactly the grammar
   Chrome trace_event files use: objects, arrays, strings, numbers,
   booleans, null. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' ->
            advance ();
            skip_ws ()
        | _ -> ()
    in
    let expect c =
      if peek () <> c then
        raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                pos := !pos + 4;
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
            | c -> raise (Bad (Printf.sprintf "bad escape %c" c)));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      float_of_string (String.sub s start (!pos - start))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | '}' ->
                  advance ();
                  Obj (List.rev ((key, v) :: acc))
              | c -> raise (Bad (Printf.sprintf "bad object char %c" c))
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (
            advance ();
            Arr [])
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  elements (v :: acc)
              | ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | c -> raise (Bad (Printf.sprintf "bad array char %c" c))
            in
            elements []
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad (Printf.sprintf "trailing input at %d" !pos));
    v

  let mem key = function
    | Obj kvs -> List.assoc key kvs
    | _ -> raise (Bad ("not an object looking up " ^ key))

  let str = function Str s -> s | _ -> raise (Bad "not a string")
  let num = function Num x -> x | _ -> raise (Bad "not a number")
end

let with_tracing f =
  Tracer.start ();
  Fun.protect f ~finally:(fun () ->
      Tracer.stop ();
      Tracer.clear ())

(* Record a small mixed trace and re-read the Chrome JSON through the
   independent parser: every span must come back with its category,
   phase, microsecond timing and args intact. *)
let test_chrome_roundtrip () =
  with_tracing (fun () ->
      Tracer.with_span ~cat:"pass"
        ~args:(fun () ->
          [
            ("rows", Tracer.Int 311);
            ("label", Tracer.Str "outer \"quoted\"");
            ("onchip", Tracer.Bool true);
            ("ratio", Tracer.Float 1.5);
          ])
        "outer"
        (fun () ->
          Tracer.with_span ~cat:"chunk" "inner" (fun () -> ());
          Tracer.instant "mark");
      let recorded = Tracer.events () in
      Alcotest.(check int) "recorded events" 3 (List.length recorded);
      let json = Json.parse (Tracer.to_chrome_json ()) in
      let events =
        match Json.mem "traceEvents" json with
        | Json.Arr l -> l
        | _ -> Alcotest.fail "traceEvents is not an array"
      in
      Alcotest.(check int) "serialized events" 3 (List.length events);
      let find name =
        List.find (fun e -> Json.(str (mem "name" e)) = name) events
      in
      let outer = find "outer" and inner = find "inner" in
      let mark = find "mark" in
      Alcotest.(check string) "outer cat" "pass" Json.(str (mem "cat" outer));
      Alcotest.(check string) "outer ph" "X" Json.(str (mem "ph" outer));
      Alcotest.(check string) "instant ph" "i" Json.(str (mem "ph" mark));
      Alcotest.(check string) "instant scope" "t" Json.(str (mem "s" mark));
      let args = Json.mem "args" outer in
      Alcotest.(check (float 1e-9)) "int arg" 311.0 Json.(num (mem "rows" args));
      Alcotest.(check string)
        "string arg escaped" "outer \"quoted\""
        Json.(str (mem "label" args));
      (match Json.mem "onchip" args with
      | Json.Bool true -> ()
      | _ -> Alcotest.fail "bool arg lost");
      Alcotest.(check (float 1e-9))
        "float arg" 1.5
        Json.(num (mem "ratio" args));
      (* the inner span nests inside the outer one, in microseconds *)
      let ts e = Json.(num (mem "ts" e)) and dur e = Json.(num (mem "dur" e)) in
      Alcotest.(check bool) "inner starts after outer" true (ts inner >= ts outer);
      Alcotest.(check bool)
        "inner ends before outer" true
        (ts inner +. dur inner <= ts outer +. dur outer +. 1e-3))

let test_disabled_is_free () =
  Tracer.clear ();
  Alcotest.(check bool) "off by default here" false (Tracer.enabled ());
  let forced = ref false in
  let r =
    Tracer.with_span
      ~args:(fun () ->
        forced := true;
        [])
      "ghost"
      (fun () -> 42)
  in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check bool) "args never forced" false !forced;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Tracer.events ()))

let test_span_on_exception () =
  with_tracing (fun () ->
      (try Tracer.with_span "boom" (fun () -> failwith "no") with
      | Failure _ -> ());
      match Tracer.events () with
      | [ e ] -> Alcotest.(check string) "span recorded" "boom" e.Tracer.name
      | es -> Alcotest.failf "expected 1 event, got %d" (List.length es))

let test_pass_counters () =
  let read name = Metrics.(counter_value (counter name)) in
  let passes0 = read "xpose.passes_total" in
  let pred0 = read "xpose.pred_touches_total" in
  let r =
    Tracer.pass ~name:"unit_test_pass" ~rows:4 ~cols:6 ~pred_touches:48
      ~scratch_elems:6
      (fun () -> 7)
  in
  Alcotest.(check int) "result" 7 r;
  Alcotest.(check int) "passes bumped" 1 (read "xpose.passes_total" - passes0);
  Alcotest.(check int)
    "pred touches bumped" 48
    (read "xpose.pred_touches_total" - pred0);
  Alcotest.(check int) "per-kind counter" 1 (read "pass.unit_test_pass")

let test_sink_flush () =
  let snapshots = ref [] in
  Fun.protect
    ~finally:(fun () -> Tracer.set_sink None)
    (fun () ->
      Tracer.set_sink (Some (fun evs -> snapshots := evs :: !snapshots));
      with_tracing (fun () ->
          Tracer.with_span ~cat:"pass" "first" (fun () -> ());
          Tracer.flush ();
          Tracer.with_span ~cat:"pass" "second" (fun () -> ());
          Tracer.flush ();
          (* idempotent full snapshots: each flush re-delivers everything *)
          match !snapshots with
          | [ later; earlier ] ->
              Alcotest.(check int) "first flush sees one event" 1
                (List.length earlier);
              Alcotest.(check int) "second flush sees both" 2
                (List.length later);
              Alcotest.(check (list string))
                "snapshot order is recording order" [ "first"; "second" ]
                (List.map (fun e -> e.Tracer.name) later)
          | l -> Alcotest.failf "expected 2 snapshots, got %d" (List.length l)));
  (* with the sink removed, flush is a no-op *)
  let before = List.length !snapshots in
  Tracer.flush ();
  Alcotest.(check int) "no sink, no delivery" before (List.length !snapshots)

let test_ambient_args_on_pass_spans () =
  with_tracing (fun () ->
      let trace = Tracer.fresh_trace_id () in
      Tracer.with_ambient_args
        [ ("trace", Tracer.Int trace) ]
        (fun () ->
          ignore
            (Tracer.pass ~name:"ambient_pass" ~rows:2 ~cols:2 ~pred_touches:8
               ~scratch_elems:2
               (fun () -> 0)));
      Alcotest.(check (list (pair string (float 0.0))))
        "ambient cell cleared" []
        (List.map
           (fun (k, v) ->
             (k, match v with Tracer.Int i -> float_of_int i | _ -> nan))
           (Tracer.ambient_args ()));
      match Tracer.events () with
      | [ e ] -> (
          match List.assoc_opt "trace" e.Tracer.args with
          | Some (Tracer.Int t) ->
              Alcotest.(check int) "pass span carries the trace id" trace t
          | _ -> Alcotest.fail "trace arg missing from the pass span")
      | es -> Alcotest.failf "expected 1 event, got %d" (List.length es))

let test_fresh_trace_ids_distinct () =
  let a = Tracer.fresh_trace_id () and b = Tracer.fresh_trace_id () in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "u32 range" true
    (a >= 0 && a <= 0xFFFF_FFFF && b >= 0 && b <= 0xFFFF_FFFF)

let tests =
  [
    Alcotest.test_case "chrome json round-trip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "sink receives idempotent full snapshots" `Quick
      test_sink_flush;
    Alcotest.test_case "ambient args land on pass spans" `Quick
      test_ambient_args_on_pass_spans;
    Alcotest.test_case "fresh trace ids are distinct u32s" `Quick
      test_fresh_trace_ids_distinct;
    Alcotest.test_case "disabled tracer records nothing" `Quick
      test_disabled_is_free;
    Alcotest.test_case "span survives an exception" `Quick
      test_span_on_exception;
    Alcotest.test_case "pass bumps registry counters" `Quick test_pass_counters;
  ]
