open Xpose_obs

(* These tests reset the process-global clock, so the suite runs LAST
   in the runner and every test restores the harness wall clock on the
   way out — the tracer/report suites depend on it. *)

let wall () = Unix.gettimeofday () *. 1e9

let with_fresh_clock f =
  Fun.protect
    ~finally:(fun () ->
      Clock.reset ();
      Clock.install wall)
    (fun () ->
      Clock.reset ();
      f ())

let test_install_if_unset_claims () =
  with_fresh_clock (fun () ->
      Alcotest.(check bool) "fresh state" false (Clock.is_installed ());
      Clock.install_if_unset (fun () -> 42.0);
      Alcotest.(check bool) "claimed" true (Clock.is_installed ());
      Alcotest.(check (float 0.0)) "source active" 42.0 (Clock.now_ns ()))

let test_install_if_unset_no_clobber () =
  with_fresh_clock (fun () ->
      Clock.install (fun () -> 1.0);
      Clock.install_if_unset (fun () -> 2.0);
      Alcotest.(check (float 0.0))
        "explicit install survives a later install_if_unset" 1.0
        (Clock.now_ns ()))

let test_install_if_unset_concurrent_once () =
  with_fresh_clock (fun () ->
      (* N domains race to install distinct constant sources; exactly
         one must win, and the clock must never flip between them. *)
      let n = 8 in
      let domains =
        List.init n (fun i ->
            Domain.spawn (fun () ->
                Clock.install_if_unset (fun () -> float_of_int (i + 1))))
      in
      List.iter Domain.join domains;
      Alcotest.(check bool) "installed" true (Clock.is_installed ());
      let winner = Clock.now_ns () in
      Alcotest.(check bool)
        "winner is one of the racers" true
        (winner >= 1.0 && winner <= float_of_int n);
      for _ = 1 to 100 do
        Alcotest.(check (float 0.0)) "source never flip-flops" winner
          (Clock.now_ns ())
      done)

let test_reset_restores_default () =
  with_fresh_clock (fun () ->
      Clock.install (fun () -> 7.0);
      Clock.reset ();
      Alcotest.(check bool) "flag cleared" false (Clock.is_installed ());
      (* the default source is CPU time: non-negative and finite *)
      let v = Clock.default_now_ns () in
      Alcotest.(check bool) "default ticks" true (Float.is_finite v && v >= 0.0))

let tests =
  [
    Alcotest.test_case "install_if_unset claims an empty slot" `Quick
      test_install_if_unset_claims;
    Alcotest.test_case "install_if_unset never clobbers" `Quick
      test_install_if_unset_no_clobber;
    Alcotest.test_case "concurrent install_if_unset installs once" `Quick
      test_install_if_unset_concurrent_once;
    Alcotest.test_case "reset restores the default source" `Quick
      test_reset_restores_default;
  ]
