open Xpose_obs

(* Small probes keep the suite fast; roofs measured on a loaded CI box
   are meaningless as numbers, so the tests only assert structure:
   positivity, the probe/ns_per_byte relationship, and the JSON
   round-trip fixpoint the CLI relies on. *)
let small_cal () = Calibrate.run ~elems:4096 ~repeats:1 ()

let check_probe name (p : Calibrate.probe) =
  Alcotest.(check bool)
    (name ^ " gbps positive and finite")
    true
    (Float.is_finite p.gbps && p.gbps > 0.0);
  Alcotest.(check bool)
    (name ^ " ns_per_byte is the reciprocal")
    true
    (Float.abs ((p.gbps *. p.ns_per_byte) -. 1.0) < 1e-9)

let test_run_positive_roofs () =
  let cal = small_cal () in
  Alcotest.(check int) "elems recorded" 4096 cal.elems;
  Alcotest.(check int) "repeats recorded" 1 cal.repeats;
  Alcotest.(check int)
    "default panel width" Calibrate.default_panel_width cal.panel_width;
  check_probe "stream" cal.stream;
  check_probe "gather" cal.gather;
  check_probe "scatter" cal.scatter;
  check_probe "permute" cal.permute

let test_run_rejects_degenerate () =
  let rejects name f =
    Alcotest.(check bool)
      name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  rejects "elems < 1024" (fun () -> Calibrate.run ~elems:8 ());
  rejects "repeats < 1" (fun () -> Calibrate.run ~elems:4096 ~repeats:0 ());
  rejects "panel_width < 2" (fun () ->
      Calibrate.run ~elems:4096 ~repeats:1 ~panel_width:1 ())

let test_json_round_trip_fixpoint () =
  let cal = small_cal () in
  let j1 = Calibrate.to_json cal in
  match Calibrate.of_json j1 with
  | Error e -> Alcotest.failf "of_json rejected its own output: %s" e
  | Ok cal' ->
      (* %.17g preserves every double exactly, so one round trip is a
         fixpoint: serialise(parse(serialise x)) = serialise x. *)
      Alcotest.(check string) "round-trip fixpoint" j1 (Calibrate.to_json cal')

(* Replace the first occurrence of [pat] in [s] (both non-empty). *)
let replace_first pat repl s =
  let n = String.length pat and len = String.length s in
  let rec find i = if i + n > len then None
    else if String.sub s i n = pat then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ repl ^ String.sub s (i + n) (len - i - n)

let test_of_json_rejects_hostile () =
  let rejected label text =
    match Calibrate.of_json text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s was accepted" label
  in
  rejected "garbage" "not json at all";
  rejected "empty object" "{}";
  let cal = small_cal () in
  rejected "unsupported version"
    (replace_first "\"version\": 1" "\"version\": 999" (Calibrate.to_json cal));
  rejected "non-positive roof"
    (Calibrate.to_json
       { cal with stream = { gbps = -1.0; ns_per_byte = -1.0 } })

(* The clock probe: fresh runs always measure one; files written before
   the probe existed (no "ghz" member) must still load — with the CPE
   machinery disabled — and re-serialise byte-identically so their
   fingerprint (and every tuning-DB entry stamped with it) survives. *)
let test_ghz_probe_and_pre_ghz_files () =
  let cal = small_cal () in
  (match cal.Calibrate.ghz with
  | Some g ->
      Alcotest.(check bool)
        "measured ghz positive and finite" true
        (Float.is_finite g && g > 0.0)
  | None -> Alcotest.fail "a fresh run must measure ghz");
  let with_ghz = Calibrate.to_json cal in
  let pre_ghz_json =
    (* strip the "ghz" line: exactly what an old file looks like *)
    String.concat "\n"
      (List.filter
         (fun line ->
           let t = String.trim line in
           not (String.length t >= 5 && String.sub t 0 5 = "\"ghz\""))
         (String.split_on_char '\n' with_ghz))
  in
  (match Calibrate.of_json pre_ghz_json with
  | Error e -> Alcotest.failf "pre-ghz file rejected: %s" e
  | Ok old ->
      Alcotest.(check bool) "pre-ghz file loads as None" true
        (old.Calibrate.ghz = None);
      Alcotest.(check string) "pre-ghz round-trip is a fixpoint" pre_ghz_json
        (Calibrate.to_json old));
  match Calibrate.of_json (replace_first "\"ghz\": " "\"ghz\": -" with_ghz) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative ghz must be rejected"

let test_save_load () =
  let cal = small_cal () in
  let file = Filename.temp_file "xpose_cal" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Calibrate.save cal ~file;
      match Calibrate.load ~file with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok cal' ->
          Alcotest.(check string) "save/load round-trips"
            (Calibrate.to_json cal) (Calibrate.to_json cal'));
  match Calibrate.load ~file:"/nonexistent/path/cal.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load of a missing file must be an Error"

let tests =
  [
    Alcotest.test_case "run yields positive roofs" `Quick
      test_run_positive_roofs;
    Alcotest.test_case "run rejects degenerate sizes" `Quick
      test_run_rejects_degenerate;
    Alcotest.test_case "JSON round-trip is a fixpoint" `Quick
      test_json_round_trip_fixpoint;
    Alcotest.test_case "of_json rejects hostile input" `Quick
      test_of_json_rejects_hostile;
    Alcotest.test_case "clock probe and pre-ghz files" `Quick
      test_ghz_probe_and_pre_ghz_files;
    Alcotest.test_case "save/load round-trips" `Quick test_save_load;
  ]
