let () =
  (* the stdlib default clock is CPU time; tests want wall time so span
     durations are meaningful under a sleeping pool *)
  Xpose_obs.Clock.install (fun () -> Unix.gettimeofday () *. 1e9);
  Alcotest.run "xpose_obs"
    [
      ("metrics", Suite_metrics.tests);
      ("tracer", Suite_tracer.tests);
      ("report", Suite_report.tests);
      ("exposition", Suite_exposition.tests);
      ("calibrate", Suite_calibrate.tests);
      ("diff", Suite_diff.tests);
      (* last: these tests reset the process-global clock and the other
         suites depend on the wall clock installed above *)
      ("clock", Suite_clock.tests);
    ]
