open Xpose_obs

let has s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let lines s = String.split_on_char '\n' s

let test_sanitize () =
  Alcotest.(check string)
    "dots become underscores" "server_queue_wait_ns"
    (Exposition.sanitize "server.queue_wait_ns");
  Alcotest.(check string)
    "colon survives" "xpose:total"
    (Exposition.sanitize "xpose:total");
  Alcotest.(check string)
    "hostile chars flattened" "a_b_c_"
    (Exposition.sanitize "a-b c\xff")

let test_counter_and_gauge_lines () =
  Metrics.incr ~by:5 (Metrics.counter "test.expo.counter");
  Metrics.set_gauge (Metrics.gauge "test.expo.gauge") 2.5;
  let out = Exposition.render () in
  Alcotest.(check bool)
    "counter TYPE line" true
    (has out "# TYPE test_expo_counter counter");
  Alcotest.(check bool) "counter sample" true (has out "test_expo_counter 5");
  Alcotest.(check bool)
    "gauge TYPE line" true
    (has out "# TYPE test_expo_gauge gauge");
  Alcotest.(check bool) "gauge sample" true (has out "test_expo_gauge 2.5")

let test_histogram_exposition () =
  let h = Metrics.histogram "test.expo.hist" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 4.0 ];
  let out = Exposition.render () in
  Alcotest.(check bool)
    "histogram TYPE line" true
    (has out "# TYPE test_expo_hist histogram");
  (* cumulative buckets: (0,1] holds 1, (1,2] brings the total to 2 *)
  Alcotest.(check bool)
    "first bucket" true
    (has out "test_expo_hist_bucket{le=\"1\"} 1");
  Alcotest.(check bool)
    "cumulative second bucket" true
    (has out "test_expo_hist_bucket{le=\"2\"} 2");
  Alcotest.(check bool)
    "+Inf closes at the count" true
    (has out "test_expo_hist_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "sum" true (has out "test_expo_hist_sum 7");
  Alcotest.(check bool) "count" true (has out "test_expo_hist_count 3");
  (* p50 of [1;2;4]: rank 1.5 interpolates halfway through (1,2] *)
  Alcotest.(check bool)
    "p50 quantile sample" true
    (has out "test_expo_hist{quantile=\"0.5\"} 1.5");
  Alcotest.(check bool)
    "p99 quantile present" true
    (has out "test_expo_hist{quantile=\"0.99\"}")

let test_non_finite_legal () =
  Metrics.set_gauge (Metrics.gauge "test.expo.nan") nan;
  Metrics.set_gauge (Metrics.gauge "test.expo.inf") infinity;
  let out = Exposition.render () in
  Alcotest.(check bool) "NaN sample" true (has out "test_expo_nan NaN");
  Alcotest.(check bool) "+Inf sample" true (has out "test_expo_inf +Inf");
  (* leave sane values for later suites *)
  Metrics.set_gauge (Metrics.gauge "test.expo.nan") 0.0;
  Metrics.set_gauge (Metrics.gauge "test.expo.inf") 0.0

let test_deterministic_and_sorted () =
  let a = Exposition.render () and b = Exposition.render () in
  Alcotest.(check string) "stable across renders" a b;
  (* one [# TYPE] line per metric, in the registry's sorted order *)
  let families =
    List.filter_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "#"; "TYPE"; name; _kind ] -> Some name
        | _ -> None)
      (lines a)
  in
  Alcotest.(check (list string))
    "TYPE lines follow the registry snapshot"
    (List.map (fun (n, _) -> Exposition.sanitize n) (Metrics.all ()))
    families

let tests =
  [
    Alcotest.test_case "sanitize maps to the Prometheus charset" `Quick
      test_sanitize;
    Alcotest.test_case "counter and gauge samples" `Quick
      test_counter_and_gauge_lines;
    Alcotest.test_case "histogram buckets are cumulative" `Quick
      test_histogram_exposition;
    Alcotest.test_case "non-finite values render legally" `Quick
      test_non_finite_legal;
    Alcotest.test_case "rendering is deterministic" `Quick
      test_deterministic_and_sorted;
  ]
