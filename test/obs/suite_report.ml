open Xpose_obs
open Xpose_core

let ev ?(cat = "pass") ?(args = []) ~seq ~ts ~dur name =
  {
    Tracer.name;
    cat;
    ph = `Complete;
    ts_ns = ts;
    dur_ns = dur;
    tid = 0;
    seq;
    args;
  }

let pred n = [ ("pred_touches", Tracer.Int n) ]

(* Hand-built events with round numbers: the predicted time of a pass is
   its touch-share of the measured total, and the relative error follows
   exactly. *)
let test_shares_and_rel_err () =
  let events =
    [
      ev ~seq:0 ~ts:0.0 ~dur:2000.0 ~args:(pred 100) "a";
      ev ~seq:1 ~ts:3000.0 ~dur:2000.0 ~args:(pred 300) "b";
    ]
  in
  let r = Report.of_events events in
  Alcotest.(check int) "touch total" 400 r.Report.total_pred_touches;
  Alcotest.(check (float 1e-9)) "measured total" 4000.0 r.Report.total_ns;
  match r.Report.passes with
  | [ a; b ] ->
      (* a: pred_ns = 4000 * 100/400 = 1000; measured 2000 -> +100% *)
      Alcotest.(check (float 1e-9)) "a pred_ns" 1000.0 a.Report.pred_ns;
      Alcotest.(check (float 1e-9)) "a rel_err" 1.0 a.Report.rel_err;
      (* b: pred_ns = 3000; measured 2000 -> -33.3% *)
      Alcotest.(check (float 1e-9)) "b pred_ns" 3000.0 b.Report.pred_ns;
      Alcotest.(check (float 1e-9)) "b rel_err" (-1.0 /. 3.0) b.Report.rel_err
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_chunk_imbalance () =
  let events =
    [
      ev ~seq:0 ~ts:0.0 ~dur:2000.0 ~args:(pred 10) "outer";
      (* two chunks inside the pass: 500 and 1500 -> mean 1000, max 1500 *)
      ev ~cat:"chunk" ~seq:1 ~ts:0.0 ~dur:500.0 "chunk0";
      ev ~cat:"chunk" ~seq:2 ~ts:500.0 ~dur:1500.0 "chunk1";
      (* a chunk outside every pass is matched to none *)
      ev ~cat:"chunk" ~seq:3 ~ts:9000.0 ~dur:100.0 "chunk_stray";
    ]
  in
  match (Report.of_events events).Report.passes with
  | [ row ] ->
      Alcotest.(check int) "chunks matched" 2 row.Report.chunks;
      Alcotest.(check (float 1e-9)) "imbalance" 1.5 row.Report.imbalance
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_nested_pass_owns_chunk () =
  (* a plan-level pass is not cat "pass"; of two containing passes the
     tighter one owns the chunk *)
  let events =
    [
      ev ~seq:0 ~ts:0.0 ~dur:10000.0 ~args:(pred 100) "outer_pass";
      ev ~seq:1 ~ts:1000.0 ~dur:4000.0 ~args:(pred 50) "inner_pass";
      ev ~cat:"chunk" ~seq:2 ~ts:2000.0 ~dur:1000.0 "chunk0";
    ]
  in
  match (Report.of_events events).Report.passes with
  | [ outer; inner ] ->
      Alcotest.(check int) "outer has no chunk" 0 outer.Report.chunks;
      Alcotest.(check int) "inner owns the chunk" 1 inner.Report.chunks
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

(* End to end: trace a real parallel C2R and check the report's predicted
   touches against the exact Theorem 6 total — the pass-level accounting
   must sum to the whole-transpose model. *)
module PT = Xpose_cpu.Par_transpose.Make (Storage.Float64)

let traced_c2r ~workers ~m ~n =
  let p = Plan.make ~m ~n in
  let buf = Storage.Float64.create (m * n) in
  Storage.fill_iota (module Storage.Float64) buf;
  Tracer.start ();
  Xpose_cpu.Pool.with_pool ~workers (fun pool -> PT.c2r pool p buf);
  Tracer.stop ();
  let r = Report.of_events (Tracer.events ()) in
  Tracer.clear ();
  (p, r)

let check_c2r_totals ~workers ~m ~n ~pass_names =
  let p, r = traced_c2r ~workers ~m ~n in
  let theorem6, _ = Theory.theorem6_work_and_space p in
  Alcotest.(check int)
    (Printf.sprintf "%dx%d pass pred sum = theorem 6" m n)
    theorem6 r.Report.total_pred_touches;
  Alcotest.(check (list string))
    "pass sequence" pass_names
    (List.map (fun (row : Report.row) -> row.Report.name) r.Report.passes);
  List.iter
    (fun (row : Report.row) ->
      Alcotest.(check int)
        (row.Report.name ^ " chunks")
        workers row.Report.chunks)
    r.Report.passes

let test_c2r_noncoprime () =
  check_c2r_totals ~workers:2 ~m:4 ~n:6
    ~pass_names:[ "rotate_pre"; "row_shuffle"; "col_shuffle" ]

let test_c2r_coprime () =
  check_c2r_totals ~workers:2 ~m:7 ~n:5
    ~pass_names:[ "row_shuffle"; "col_shuffle" ]

let test_c2r_paper_shape () =
  check_c2r_totals ~workers:4 ~m:311 ~n:217
    ~pass_names:[ "row_shuffle"; "col_shuffle" ]

(* A synthetic calibration with round-number roofs: 1 byte/ns for every
   traffic shape except gather at 0.5, so fractions are exact. *)
let synthetic_cal =
  let probe gbps = { Calibrate.gbps; ns_per_byte = 1.0 /. gbps } in
  {
    Calibrate.elems = 4096;
    repeats = 1;
    panel_width = 16;
    stream = probe 1.0;
    gather = probe 0.5;
    scatter = probe 1.0;
    permute = probe 1.0;
    ghz = None;
  }

let test_roofline_columns () =
  let events =
    [
      (* 100 touches = 800 B over 2000 ns -> 0.4 GB/s; plain name maps
         to the stream roof (1.0) -> fraction 0.4 *)
      ev ~seq:0 ~ts:0.0 ~dur:2000.0 ~args:(pred 100) "plain";
      (* fused name maps to the gather roof (0.5): 300 touches = 2400 B
         over 2000 ns -> 1.2 GB/s -> fraction 2.4, clamped to 1.5 *)
      ev ~seq:1 ~ts:3000.0 ~dur:2000.0 ~args:(pred 300) "fused_panel";
    ]
  in
  let r = Report.of_events ~cal:synthetic_cal events in
  Alcotest.(check bool) "calibrated" true r.Report.calibrated;
  (match r.Report.passes with
  | [ plain; fused ] ->
      Alcotest.(check (float 1e-9)) "plain gbps" 0.4 plain.Report.gbps;
      Alcotest.(check (float 1e-9))
        "plain roofline_frac" 0.4 plain.Report.roofline_frac;
      Alcotest.(check (float 1e-9)) "fused gbps" 1.2 fused.Report.gbps;
      Alcotest.(check (float 1e-9))
        "over-roof fraction clamps" Roofline.max_fraction
        fused.Report.roofline_frac;
      List.iter
        (fun (row : Report.row) ->
          Alcotest.(check bool)
            (row.Report.name ^ " frac in (0, max]")
            true
            (row.Report.roofline_frac > 0.0
            && row.Report.roofline_frac <= Roofline.max_fraction))
        [ plain; fused ]
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  (* the calibrated table grows the GB/s and roofl columns *)
  let rendered = r |> Report.render ~show_times:true in
  let has s sub =
    let nn = String.length sub in
    let rec go i =
      i + nn <= String.length s && (String.sub s i nn = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "GB/s header" true (has rendered "GB/s");
  Alcotest.(check bool) "roofl header" true (has rendered "roofl")

(* A clock probe turns nanoseconds into cycles: with ghz = 2 and 100
   touches = 50 elements, a 2000 ns pass is 4000 cycles -> CPE 80. *)
let test_cpe_column () =
  let cal = { synthetic_cal with Calibrate.ghz = Some 2.0 } in
  let events = [ ev ~seq:0 ~ts:0.0 ~dur:2000.0 ~args:(pred 100) "plain" ] in
  let r = Report.of_events ~cal events in
  Alcotest.(check bool) "has_cpe" true r.Report.has_cpe;
  (match r.Report.passes with
  | [ row ] -> Alcotest.(check (float 1e-9)) "cpe" 80.0 row.Report.cpe
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
  let has s sub =
    let nn = String.length sub in
    let rec go i =
      i + nn <= String.length s && (String.sub s i nn = sub || go (i + 1))
    in
    go 0
  in
  let rendered = Report.render ~show_times:true r in
  Alcotest.(check bool) "CPE header" true (has rendered "CPE");
  Alcotest.(check bool)
    "CPE value rendered" true
    (has rendered "80.00");
  (* the gauge is published for the exposition *)
  Alcotest.(check (float 1e-9))
    "pass.plain.cpe gauge" 80.0
    (Metrics.gauge_value (Metrics.gauge "pass.plain.cpe"));
  (* a ghz-less calibration keeps the roofline-era layout *)
  let r' = Report.of_events ~cal:synthetic_cal events in
  Alcotest.(check bool) "no cpe without ghz" false r'.Report.has_cpe;
  Alcotest.(check bool)
    "no CPE column without ghz" false
    (has (Report.render ~show_times:true r') "CPE")

let test_uncalibrated_rows_are_nan () =
  let events = [ ev ~seq:0 ~ts:0.0 ~dur:2000.0 ~args:(pred 100) "plain" ] in
  let r = Report.of_events events in
  Alcotest.(check bool) "not calibrated" false r.Report.calibrated;
  (match r.Report.passes with
  | [ row ] ->
      Alcotest.(check bool) "gbps nan" true (Float.is_nan row.Report.gbps);
      Alcotest.(check bool)
        "frac nan" true
        (Float.is_nan row.Report.roofline_frac)
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
  (* and the rendered table keeps the pre-calibration layout *)
  let rendered = Report.render ~show_times:true r in
  let has s sub =
    let nn = String.length sub in
    let rec go i =
      i + nn <= String.length s && (String.sub s i nn = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "no GB/s column" false (has rendered "GB/s")

let test_render_no_times_deterministic () =
  let _, r = traced_c2r ~workers:2 ~m:4 ~n:6 in
  let rendered = Report.render ~show_times:false r in
  let _, r2 = traced_c2r ~workers:2 ~m:4 ~n:6 in
  let rendered2 = Report.render ~show_times:false r2 in
  Alcotest.(check string) "identical across runs" rendered rendered2;
  Alcotest.(check bool)
    "mentions the touch total" true
    (let has s sub =
       let nn = String.length sub in
       let rec go i =
         i + nn <= String.length s && (String.sub s i nn = sub || go (i + 1))
       in
       go 0
     in
     has rendered "120 predicted element touches")

let tests =
  [
    Alcotest.test_case "touch shares and relative error" `Quick
      test_shares_and_rel_err;
    Alcotest.test_case "chunk matching and imbalance" `Quick
      test_chunk_imbalance;
    Alcotest.test_case "tightest containing pass owns the chunk" `Quick
      test_nested_pass_owns_chunk;
    Alcotest.test_case "c2r 4x6 pred sum = theorem 6" `Quick
      test_c2r_noncoprime;
    Alcotest.test_case "c2r 7x5 (coprime) pred sum = theorem 6" `Quick
      test_c2r_coprime;
    Alcotest.test_case "c2r 311x217 pred sum = theorem 6" `Quick
      test_c2r_paper_shape;
    Alcotest.test_case "calibrated rows carry roofline columns" `Quick
      test_roofline_columns;
    Alcotest.test_case "clock probe adds the CPE column and gauge" `Quick
      test_cpe_column;
    Alcotest.test_case "uncalibrated rows stay nan" `Quick
      test_uncalibrated_rows_are_nan;
    Alcotest.test_case "render without times is deterministic" `Quick
      test_render_no_times_deterministic;
  ]
