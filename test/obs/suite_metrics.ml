open Xpose_obs

(* The load-bearing claim: counters are exact under concurrent bumps from
   pool workers (sharded cells, atomic increments), not merely
   approximate. *)
let test_counter_parallel () =
  let c = Metrics.counter "test.parallel_bumps" in
  let before = Metrics.counter_value c in
  let n = 100_000 in
  Xpose_cpu.Pool.with_pool ~workers:4 (fun pool ->
      Xpose_cpu.Pool.parallel_for pool ~lo:0 ~hi:n (fun _ -> Metrics.incr c));
  Alcotest.(check int) "exact total" n (Metrics.counter_value c - before)

let test_counter_by_parallel () =
  let c = Metrics.counter "test.parallel_by" in
  let before = Metrics.counter_value c in
  Xpose_cpu.Pool.with_pool ~workers:4 (fun pool ->
      Xpose_cpu.Pool.parallel_for pool ~lo:0 ~hi:1_000 (fun i ->
          Metrics.incr ~by:i c));
  Alcotest.(check int)
    "exact weighted total" (1000 * 999 / 2)
    (Metrics.counter_value c - before)

let test_shards_sum () =
  let c = Metrics.counter "test.shard_sum" in
  Xpose_cpu.Pool.with_pool ~workers:4 (fun pool ->
      Xpose_cpu.Pool.parallel_for pool ~lo:0 ~hi:10_000 (fun _ ->
          Metrics.incr c));
  let total = Array.fold_left ( + ) 0 (Metrics.shard_values c) in
  Alcotest.(check int) "shards sum to value" (Metrics.counter_value c) total

let test_registration_idempotent () =
  let a = Metrics.counter "test.same_name" in
  Metrics.incr a;
  let b = Metrics.counter "test.same_name" in
  Metrics.incr b;
  Alcotest.(check int) "one underlying counter" 2 (Metrics.counter_value a)

let test_type_mismatch () =
  ignore (Metrics.counter "test.typed");
  Alcotest.check_raises "gauge under a counter name"
    (Invalid_argument
       "Metrics: \"test.typed\" is already registered as another metric type")
    (fun () -> ignore (Metrics.gauge "test.typed"))

let test_gauge_histogram () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 1.5;
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 1e-9)) "last write wins" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 4.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 1007.0 (Metrics.histogram_sum h);
  let bucketed =
    Array.fold_left (fun a (_, c) -> a + c) 0 (Metrics.histogram_buckets h)
  in
  Alcotest.(check int) "every observation bucketed" 4 bucketed

let test_histogram_quantile () =
  let h = Metrics.histogram "test.quantile" in
  Alcotest.(check bool)
    "empty histogram yields nan" true
    (Float.is_nan (Metrics.histogram_quantile h 0.5));
  List.iter (Metrics.observe h) [ 1.0; 2.0; 4.0; 8.0 ];
  (* Four observations, one per log2 bucket: rank q*4 walks the
     cumulative counts, interpolating inside the bucket it lands in. *)
  Alcotest.(check (float 1e-9))
    "p25 is bucket 0's upper bound" 1.0
    (Metrics.histogram_quantile h 0.25);
  Alcotest.(check (float 1e-9))
    "p50 is bucket 1's upper bound" 2.0
    (Metrics.histogram_quantile h 0.50);
  Alcotest.(check (float 1e-9))
    "p100 is bucket 3's upper bound" 8.0
    (Metrics.histogram_quantile h 1.0);
  (* Out-of-range q clamps rather than extrapolating. *)
  Alcotest.(check (float 1e-9))
    "q > 1 clamps to the max" 8.0
    (Metrics.histogram_quantile h 2.0);
  Alcotest.(check bool)
    "q <= 0 clamps to a finite value" true
    (Float.is_finite (Metrics.histogram_quantile h (-1.0)));
  Alcotest.(check bool)
    "NaN q yields nan" true
    (Float.is_nan (Metrics.histogram_quantile h Float.nan))

let test_dump_sorted () =
  (* Exposition and diffing rely on a deterministic dump order; register
     in reverse-alphabetical order and assert the snapshot is sorted. *)
  ignore (Metrics.counter "test.sorted.z");
  ignore (Metrics.counter "test.sorted.a");
  ignore (Metrics.counter "test.sorted.m");
  let names = List.map fst (Metrics.dump ()) in
  Alcotest.(check (list string))
    "dump is sorted by name"
    (List.sort String.compare names)
    names;
  let all_names = List.map fst (Metrics.all ()) in
  Alcotest.(check (list string))
    "all () is sorted by name"
    (List.sort String.compare all_names)
    all_names

let test_dump_and_render () =
  let c = Metrics.counter "test.dumped" in
  Metrics.incr ~by:7 c;
  (match List.assoc_opt "test.dumped" (Metrics.dump ()) with
  | Some (Metrics.Counter 7) -> ()
  | _ -> Alcotest.fail "dump missing test.dumped = 7");
  let rendered = Metrics.render () in
  let has_line =
    String.split_on_char '\n' rendered
    |> List.exists (fun l ->
           let has s sub =
             let n = String.length sub in
             let rec go i =
               i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
             in
             go 0
           in
           has l "test.dumped" && has l "7")
  in
  Alcotest.(check bool) "rendered line present" true has_line

let test_render_json () =
  let c = Metrics.counter "test.json.counter" in
  Metrics.incr ~by:3 c;
  Metrics.set_gauge (Metrics.gauge "test.json.gauge") 2.5;
  let h = Metrics.histogram "test.json.hist" in
  Metrics.observe h 1.0;
  Metrics.observe h 2.0;
  let json = Metrics.render_json () in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" sub) true (has sub))
    [
      "\"counters\"";
      "\"gauges\"";
      "\"histograms\"";
      "\"test.json.counter\": 3";
      "\"test.json.gauge\": 2.5";
      (* p50 of [1.0; 2.0] interpolates to bucket 0's upper bound,
         exactly 1.0; p90/p99 land mid-bucket so only their presence is
         pinned (their rendering tracks float interpolation). *)
      "\"test.json.hist\": {\"count\": 2, \"sum\": 3.0, \"p50\": 1.0";
      "\"p90\": ";
      "\"p99\": ";
    ];
  (* integral gauges render with a decimal point so consumers parse a
     stable number type *)
  Metrics.set_gauge (Metrics.gauge "test.json.gauge") 4.0;
  Alcotest.(check bool) "integral floats keep a decimal point" true
    (let json = Metrics.render_json () in
     let n = String.length "\"test.json.gauge\": 4.0" in
     let sub = "\"test.json.gauge\": 4.0" in
     let rec go i =
       i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
     in
     go 0)

let test_render_json_non_finite () =
  (* A degenerate computation can park NaN or infinity in a gauge (or
     overflow a histogram sum); the snapshot must stay parseable JSON
     rather than emit bare [nan]/[inf] tokens. *)
  Metrics.set_gauge (Metrics.gauge "test.json.nan_gauge") nan;
  Metrics.set_gauge (Metrics.gauge "test.json.inf_gauge") infinity;
  let h = Metrics.histogram "test.json.inf_hist" in
  Metrics.observe h infinity;
  let json = Metrics.render_json () in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" sub) true (has sub))
    [
      "\"test.json.nan_gauge\": null";
      "\"test.json.inf_gauge\": null";
      "\"sum\": null";
    ];
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "no bare %s token" sub)
        false (has sub))
    [ ": nan"; ": inf"; ": -inf" ];
  (* Leave finite values behind so later tests see a sane registry. *)
  Metrics.set_gauge (Metrics.gauge "test.json.nan_gauge") 0.0;
  Metrics.set_gauge (Metrics.gauge "test.json.inf_gauge") 0.0

let tests =
  [
    Alcotest.test_case "parallel counter is exact" `Quick test_counter_parallel;
    Alcotest.test_case "parallel incr ~by is exact" `Quick
      test_counter_by_parallel;
    Alcotest.test_case "shard values sum to the total" `Quick test_shards_sum;
    Alcotest.test_case "registration is idempotent by name" `Quick
      test_registration_idempotent;
    Alcotest.test_case "name/type mismatch raises" `Quick test_type_mismatch;
    Alcotest.test_case "gauges and histograms" `Quick test_gauge_histogram;
    Alcotest.test_case "histogram_quantile" `Quick test_histogram_quantile;
    Alcotest.test_case "dump is sorted by name" `Quick test_dump_sorted;
    Alcotest.test_case "dump and render" `Quick test_dump_and_render;
    Alcotest.test_case "render_json" `Quick test_render_json;
    Alcotest.test_case "render_json stays valid on non-finite floats" `Quick
      test_render_json_non_finite;
  ]
