open Xpose_obs

(* A minimal document in the bench driver's emitter format. *)
let doc ?(counters = []) ?(roofline = []) benchmarks =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b "    {\"name\": \"%s\", \"ns_per_run\": %.17g}" name ns)
    benchmarks;
  Buffer.add_string b "\n  ],\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "\"%s\": %.17g" name v)
    counters;
  Buffer.add_string b "},\n  \"roofline\": {";
  List.iteri
    (fun i (pass, frac) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "\"%s\": {\"roofline_frac\": %.17g}" pass frac)
    roofline;
  Buffer.add_string b "}\n}\n";
  Buffer.contents b

let run ?thresholds ~baseline ~current () =
  match Diff.compare ?thresholds ~baseline ~current () with
  | Ok v -> v
  | Error e -> Alcotest.failf "compare failed: %s" e

let base =
  doc
    ~counters:[ ("xpose.elements_moved", 1000.0) ]
    ~roofline:[ ("c2r.fused", 0.8) ]
    [ ("c2r/fused 480x384", 50_000.0); ("r2c/fused 480x384", 60_000.0) ]

let test_self_compare_ok () =
  let v = run ~baseline:base ~current:base () in
  Alcotest.(check bool) "ok" true v.Diff.ok;
  Alcotest.(check int) "no findings" 0 (List.length v.Diff.findings);
  (* 2 benchmarks + 1 counter + 1 roofline pass on both sides *)
  Alcotest.(check int) "compared all" 4 v.Diff.compared

let test_slowdown_flagged () =
  let cur =
    doc
      ~counters:[ ("xpose.elements_moved", 1000.0) ]
      ~roofline:[ ("c2r.fused", 0.8) ]
      [ ("c2r/fused 480x384", 100_000.0); ("r2c/fused 480x384", 60_000.0) ]
  in
  let v = run ~baseline:base ~current:cur () in
  Alcotest.(check bool) "not ok on a 2x slowdown" false v.Diff.ok;
  match v.Diff.findings with
  | [ f ] ->
      Alcotest.(check string) "category" "time" f.Diff.category;
      Alcotest.(check string) "metric" "c2r/fused 480x384" f.Diff.metric
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_small_absolute_delta_is_noise () =
  (* 10 ns -> 25 ns is +150 % relative but under the min_ns floor. *)
  let b = doc [ ("tiny", 10.0) ] and c = doc [ ("tiny", 25.0) ] in
  let v = run ~baseline:b ~current:c () in
  Alcotest.(check bool) "sub-floor delta ignored" true v.Diff.ok

let test_missing_benchmark () =
  let cur = doc [ ("r2c/fused 480x384", 60_000.0) ] in
  let v = run ~baseline:base ~current:cur () in
  Alcotest.(check bool) "not ok" false v.Diff.ok;
  let missing =
    List.filter (fun f -> f.Diff.category = "missing") v.Diff.findings
  in
  Alcotest.(check int) "one missing finding" 1 (List.length missing)

let test_counter_growth () =
  let cur =
    doc
      ~counters:[ ("xpose.elements_moved", 2000.0) ]
      [ ("c2r/fused 480x384", 50_000.0); ("r2c/fused 480x384", 60_000.0) ]
  in
  let v = run ~baseline:base ~current:cur () in
  Alcotest.(check bool) "counter doubling flagged" false v.Diff.ok;
  match v.Diff.findings with
  | [ f ] -> Alcotest.(check string) "category" "counter" f.Diff.category
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_roofline_drop () =
  let cur =
    doc
      ~roofline:[ ("c2r.fused", 0.3) ]
      [ ("c2r/fused 480x384", 50_000.0); ("r2c/fused 480x384", 60_000.0) ]
  in
  let v = run ~baseline:base ~current:cur () in
  Alcotest.(check bool) "roofline collapse flagged" false v.Diff.ok;
  match v.Diff.findings with
  | [ f ] ->
      Alcotest.(check string) "category" "roofline" f.Diff.category;
      Alcotest.(check string) "metric" "c2r.fused" f.Diff.metric
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_thresholds_tunable () =
  let cur =
    doc
      [ ("c2r/fused 480x384", 60_000.0); ("r2c/fused 480x384", 60_000.0) ]
  in
  (* +20 % passes the default +50 % bar but fails a 10 % one. *)
  let v = run ~baseline:base ~current:cur () in
  Alcotest.(check bool) "default thresholds tolerate +20%" true v.Diff.ok;
  let tight = { Diff.default_thresholds with time_rel = 0.1 } in
  let v = run ~thresholds:tight ~baseline:base ~current:cur () in
  Alcotest.(check bool) "tight thresholds flag +20%" false v.Diff.ok

let test_malformed_is_error () =
  let is_error baseline current =
    match Diff.compare ~baseline ~current () with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "garbage baseline" true (is_error "nope" base);
  Alcotest.(check bool) "garbage current" true (is_error base "{broken");
  Alcotest.(check bool)
    "document without benchmarks" true
    (is_error "{\"counters\": {}}" base)

let test_render_verdict () =
  let cur = doc [ ("r2c/fused 480x384", 60_000.0) ] in
  let v = run ~baseline:base ~current:cur () in
  let rendered = Diff.render_verdict v in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length rendered
      && (String.sub rendered i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "carries ok flag" true (has "\"ok\": false");
  Alcotest.(check bool) "carries category" true (has "\"missing\"");
  Alcotest.(check bool)
    "nan current renders as null" true
    (has "\"current\": null");
  (* the verdict itself must parse as JSON *)
  match Json_lite.parse rendered with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "verdict is not valid JSON: %s" e

let tests =
  [
    Alcotest.test_case "self-compare is ok" `Quick test_self_compare_ok;
    Alcotest.test_case "2x slowdown is flagged" `Quick test_slowdown_flagged;
    Alcotest.test_case "sub-floor deltas are noise" `Quick
      test_small_absolute_delta_is_noise;
    Alcotest.test_case "missing benchmark is a finding" `Quick
      test_missing_benchmark;
    Alcotest.test_case "counter growth is flagged" `Quick test_counter_growth;
    Alcotest.test_case "roofline drop is flagged" `Quick test_roofline_drop;
    Alcotest.test_case "thresholds are tunable" `Quick test_thresholds_tunable;
    Alcotest.test_case "malformed input is an Error" `Quick
      test_malformed_is_error;
    Alcotest.test_case "render_verdict is valid JSON" `Quick
      test_render_verdict;
  ]
