let () =
  (* The tuner times wall-clock; the library default clock measures CPU
     seconds, which would make budgets and measurements nonsense. *)
  Xpose_obs.Clock.install_if_unset (fun () -> Unix.gettimeofday () *. 1e9);
  Alcotest.run "xpose_tune"
    [
      ("space", Suite_space.tests);
      ("db", Suite_db.tests);
      ("tuner", Suite_tuner.tests);
      ("engine_select", Suite_engine_select.tests);
    ]
