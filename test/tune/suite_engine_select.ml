open Xpose_core
open Xpose_tune
module S = Storage.Float64

let entry ~params m n =
  {
    Db.m;
    n;
    nb = 1;
    params;
    predicted_ns = 1.0;
    measured_ns = 1.0;
    default_ns = 2.0;
    roofline_frac = 0.5;
  }

let iota m n =
  let buf = S.create (m * n) in
  Storage.fill_iota (module S) buf;
  buf

let check_transposed ~m ~n buf =
  let ok = ref true in
  for l = 0 to (m * n) - 1 do
    if S.get buf l <> float_of_int ((n * (l mod m)) + (l / m)) then ok := false
  done;
  !ok

let test_miss_falls_back_to_default () =
  let sel = Engine_select.create () in
  let params = Engine_select.params_for sel ~m:48 ~n:36 in
  Alcotest.(check bool) "default on miss" true
    (Tune_params.equal params Tune_params.default);
  Alcotest.(check int) "miss counted" 1 (Engine_select.misses sel);
  Alcotest.(check int) "no hits" 0 (Engine_select.hits sel)

let test_hit_and_transposed_shape () =
  let db = Db.create ~fingerprint:"fp" in
  let tuned = { Tune_params.default with panel_width = 32 } in
  Db.add db (entry ~params:tuned 48 36);
  let sel = Engine_select.create ~db () in
  Alcotest.(check bool) "tuned shape hits" true
    (Tune_params.equal (Engine_select.params_for sel ~m:48 ~n:36) tuned);
  (* The transposed request runs the same plan, so it shares the
     entry. *)
  Alcotest.(check bool) "transposed shape shares the entry" true
    (Tune_params.equal (Engine_select.params_for sel ~m:36 ~n:48) tuned);
  Alcotest.(check int) "both were hits" 2 (Engine_select.hits sel)

let test_window_capped_at_tenant () =
  let db = Db.create ~fingerprint:"fp" in
  Db.add db
    (entry
       ~params:
         {
           Tune_params.default with
           engine = Tune_params.Ooc;
           window_bytes = Some (8 * 1024 * 1024);
         }
       48 36);
  let sel = Engine_select.create ~db () in
  (* Tuned window above the tenant's: the tenant's residency promise
     wins. Below it: the tuned window wins. *)
  Alcotest.(check int) "capped at tenant" (4 * 1024 * 1024)
    (Engine_select.window_bytes_for sel ~m:48 ~n:36
       ~default:(4 * 1024 * 1024));
  Alcotest.(check int) "tuned window when smaller" (8 * 1024 * 1024)
    (Engine_select.window_bytes_for sel ~m:48 ~n:36
       ~default:(64 * 1024 * 1024));
  Alcotest.(check int) "miss keeps the tenant window" 1234
    (Engine_select.window_bytes_for sel ~m:7 ~n:9 ~default:1234)

let dispatch_cases =
  [
    ("kernels", { Tune_params.default with engine = Tune_params.Kernels });
    ( "cache w8",
      { Tune_params.default with engine = Tune_params.Cache; panel_width = 8 }
    );
    ("fused w16", Tune_params.default);
    ("fused w64", { Tune_params.default with panel_width = 64 });
    ( "ooc 1MiB",
      {
        Tune_params.default with
        engine = Tune_params.Ooc;
        window_bytes = Some (1 lsl 20);
      } );
  ]

let test_dispatch_matches_oracle () =
  List.iter
    (fun (name, params) ->
      let db = Db.create ~fingerprint:"fp" in
      Db.add db (entry ~params 48 36);
      let sel = Engine_select.create ~db () in
      let buf = iota 48 36 in
      Engine_select.dispatch sel ~m:48 ~n:36 buf;
      Alcotest.(check bool)
        (Printf.sprintf "%s dispatch matches the oracle" name)
        true
        (check_transposed ~m:48 ~n:36 buf))
    dispatch_cases

let test_dispatch_batch_matches_oracle () =
  Xpose_cpu.Pool.with_pool ~workers:2 (fun pool ->
      List.iter
        (fun (name, params) ->
          List.iter
            (fun split ->
              let params = { params with Tune_params.batch_split = split } in
              let db = Db.create ~fingerprint:"fp" in
              Db.add db (entry ~params 32 24);
              let sel = Engine_select.create ~db () in
              let bufs = Array.init 3 (fun _ -> iota 32 24) in
              Engine_select.dispatch_batch sel pool ~m:32 ~n:24 bufs;
              Array.iter
                (fun buf ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s/%s batch matches the oracle" name
                       (Tune_params.split_to_string split))
                    true
                    (check_transposed ~m:32 ~n:24 buf))
                bufs)
            [
              Tune_params.Auto;
              Tune_params.Matrix_parallel;
              Tune_params.Panel_parallel;
              Tune_params.Hybrid 2;
            ])
        [
          ("kernels", { Tune_params.default with engine = Tune_params.Kernels });
          ("fused w32", { Tune_params.default with panel_width = 32 });
        ])

let test_dispatch_validates () =
  let sel = Engine_select.create () in
  Alcotest.check_raises "shape/buffer mismatch"
    (Invalid_argument
       "Engine_select.dispatch: buffer size does not match shape") (fun () ->
      Engine_select.dispatch sel ~m:4 ~n:4 (S.create 3))

let tests =
  [
    Alcotest.test_case "miss falls back to default" `Quick
      test_miss_falls_back_to_default;
    Alcotest.test_case "hit, including the transposed shape" `Quick
      test_hit_and_transposed_shape;
    Alcotest.test_case "tuned window capped at the tenant's" `Quick
      test_window_capped_at_tenant;
    Alcotest.test_case "dispatch matches the oracle per engine" `Quick
      test_dispatch_matches_oracle;
    Alcotest.test_case "batched dispatch matches the oracle" `Quick
      test_dispatch_batch_matches_oracle;
    Alcotest.test_case "dispatch validates its arguments" `Quick
      test_dispatch_validates;
  ]
