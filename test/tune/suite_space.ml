open Xpose_core
open Xpose_tune

let probe gbps = { Xpose_obs.Calibrate.gbps; ns_per_byte = 1.0 /. gbps }

let cal =
  {
    Xpose_obs.Calibrate.elems = 1 lsl 16;
    repeats = 3;
    panel_width = 16;
    stream = probe 40.0;
    gather = probe 16.0;
    scatter = probe 10.0;
    permute = probe 8.0;
    ghz = None;
  }

let rates = Pass_cost.rates_of_calibration cal

let test_candidates_contain_default () =
  List.iter
    (fun nb ->
      let cands = Space.candidates (Space.make ()) ~nb in
      Alcotest.(check bool)
        (Printf.sprintf "default present at nb=%d" nb)
        true
        (List.exists (Tune_params.equal Tune_params.default) cands))
    [ 1; 4 ]

let test_candidates_axes () =
  let space = Space.make () in
  let single = Space.candidates space ~nb:1 in
  (* nb = 1 collapses the split axis: no candidate carries a non-Auto
     split. *)
  Alcotest.(check bool)
    "single-matrix candidates never carry a split" true
    (List.for_all
       (fun (c : Tune_params.t) -> c.batch_split = Tune_params.Auto)
       single);
  let batched = Space.candidates space ~nb:8 in
  Alcotest.(check bool)
    "batched space explores splits" true
    (List.exists
       (fun (c : Tune_params.t) -> c.batch_split <> Tune_params.Auto)
       batched);
  Alcotest.(check bool)
    "every supported width appears on the fused axis" true
    (List.for_all
       (fun w ->
         List.exists
           (fun (c : Tune_params.t) ->
             c.engine = Tune_params.Fused && c.panel_width = w)
           single)
       Tune_params.supported_widths);
  (* No ooc candidates unless the space carries windows. *)
  Alcotest.(check bool)
    "no ooc without windows" true
    (List.for_all
       (fun (c : Tune_params.t) -> c.engine <> Tune_params.Ooc)
       single);
  let with_ooc =
    Space.candidates
      (Space.make
         ~engines:
           [ Tune_params.Kernels; Tune_params.Fused; Tune_params.Ooc ]
         ~windows:[ 1 lsl 20 ] ())
      ~nb:1
  in
  Alcotest.(check bool)
    "windows switch the ooc axis on" true
    (List.exists
       (fun (c : Tune_params.t) ->
         c.engine = Tune_params.Ooc && c.window_bytes = Some (1 lsl 20))
       with_ooc)

let test_price_sorted_and_prune_keeps_default () =
  let cands = Space.candidates (Space.make ()) ~nb:1 in
  let priced = Space.price ~cal ~rates ~m:512 ~n:384 cands in
  Alcotest.(check bool)
    "prices are finite and positive" true
    (List.for_all
       (fun (c : Space.priced) ->
         Float.is_finite c.predicted_ns && c.predicted_ns > 0.0)
       priced);
  Alcotest.(check bool)
    "price sorts ascending" true
    (fst
       (List.fold_left
          (fun (ok, prev) (c : Space.priced) ->
            (ok && c.predicted_ns >= prev, c.predicted_ns))
          (true, Float.neg_infinity) priced));
  (* Even keep=1 retains the default configuration: the winner is
     always gated against it. *)
  let kept = Space.prune ~keep:1 priced in
  Alcotest.(check bool)
    "prune keeps the default alive" true
    (List.exists
       (fun (c : Space.priced) ->
        Tune_params.equal c.params Tune_params.default)
       kept);
  Alcotest.(check bool) "prune shrinks" true (List.length kept <= 2)

let test_wider_fused_prices_cheaper () =
  (* The width-scaled model must prefer wider fused panels on a
     strided-bound calibration — that ordering is what makes the
     pruning non-trivial. *)
  let price w =
    Space.predict_ns ~cal ~rates ~m:1024 ~n:768
      { Tune_params.default with panel_width = w }
  in
  Alcotest.(check bool) "w32 beats w16" true (price 32 < price 16);
  Alcotest.(check bool) "w64 beats w32" true (price 64 < price 32);
  Alcotest.(check bool) "w8 loses to w16" true (price 8 > price 16)

let tests =
  [
    Alcotest.test_case "candidates contain the default" `Quick
      test_candidates_contain_default;
    Alcotest.test_case "candidate axes obey the space" `Quick
      test_candidates_axes;
    Alcotest.test_case "price sorts; prune keeps the default" `Quick
      test_price_sorted_and_prune_keeps_default;
    Alcotest.test_case "width scaling orders fused candidates" `Quick
      test_wider_fused_prices_cheaper;
  ]
