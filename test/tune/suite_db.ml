open Xpose_core
open Xpose_tune

let entry ?(params = Tune_params.default) ?(nb = 1) m n =
  {
    Db.m;
    n;
    nb;
    params;
    predicted_ns = 1000.0 *. float_of_int (m * n);
    measured_ns = 1250.5;
    default_ns = 1500.25;
    roofline_frac = 0.42;
  }

let tuned =
  {
    Tune_params.engine = Tune_params.Fused;
    panel_width = 32;
    batch_split = Tune_params.Hybrid 3;
    window_bytes = Some (1 lsl 22);
    kernel_tier = Tune_params.Mk16;
  }

let test_roundtrip () =
  let db = Db.create ~fingerprint:"abc123" in
  Db.add db (entry 512 384);
  Db.add db (entry ~params:tuned ~nb:4 48 1000);
  let json = Db.to_json db in
  match Db.of_json json with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok db' ->
      Alcotest.(check string)
        "fingerprint survives" "abc123" (Db.fingerprint db');
      Alcotest.(check int) "both entries survive" 2 (Db.length db');
      (match Db.find db' ~m:48 ~n:1000 with
      | None -> Alcotest.fail "entry lost"
      | Some e ->
          Alcotest.(check bool)
            "params survive (engine, width, split, window)" true
            (Tune_params.equal e.Db.params tuned);
          Alcotest.(check int) "nb survives" 4 e.Db.nb;
          Alcotest.(check (float 1e-9)) "measured survives" 1250.5
            e.Db.measured_ns;
          Alcotest.(check (float 1e-9)) "default floor survives" 1500.25
            e.Db.default_ns);
      Alcotest.(check string)
        "serialization is deterministic" json (Db.to_json db')

let test_pre_tier_entries_load () =
  (* DBs written before the kernel-tier axis carry no "kernel_tier"
     field; they must load as scalar-tier entries, not errors. *)
  let json =
    "{\"version\": 1, \"fingerprint\": \"fp\", \"entries\": [{\"m\": 8, \
     \"n\": 6, \"nb\": 1, \"engine\": \"fused\", \"panel_width\": 16, \
     \"batch_split\": \"auto\", \"predicted_ns\": 1.0, \"measured_ns\": 1.0, \
     \"default_ns\": 1.0, \"roofline_frac\": 0.5}]}"
  in
  match Db.of_json json with
  | Error msg -> Alcotest.failf "pre-tier DB rejected: %s" msg
  | Ok db -> (
      match Db.find db ~m:8 ~n:6 with
      | Some e ->
          Alcotest.(check bool)
            "defaults to scalar tier" true
            (e.Db.params.Tune_params.kernel_tier = Tune_params.Scalar)
      | None -> Alcotest.fail "entry missing")

let test_add_replaces () =
  let db = Db.create ~fingerprint:"f" in
  Db.add db (entry 8 6);
  Db.add db (entry ~params:tuned 8 6);
  Alcotest.(check int) "one entry per shape" 1 (Db.length db);
  match Db.find db ~m:8 ~n:6 with
  | Some e ->
      Alcotest.(check bool) "latest wins" true
        (Tune_params.equal e.Db.params tuned)
  | None -> Alcotest.fail "entry missing"

let test_hostile_bytes () =
  List.iter
    (fun bytes ->
      match Db.of_json bytes with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted hostile bytes: %s" bytes)
    [
      "";
      "not json";
      "{}";
      "{\"version\": 99, \"fingerprint\": \"x\", \"entries\": []}";
      "{\"version\": 1, \"entries\": []}";
      "{\"version\": 1, \"fingerprint\": \"x\", \"entries\": \
       [{\"m\": -3}]}";
    ]

let with_temp_file f =
  let path = Filename.temp_file "xpose_test_db" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_load_statuses () =
  with_temp_file (fun path ->
      Sys.remove path;
      (* Missing file: fresh. *)
      (match Db.load ~file:path ~fingerprint:"fp1" with
      | Ok (db, Db.Fresh) ->
          Alcotest.(check int) "fresh is empty" 0 (Db.length db)
      | Ok _ -> Alcotest.fail "expected Fresh"
      | Error msg -> Alcotest.fail msg);
      (* Save under fp1, load under fp1: entries restored. *)
      let db = Db.create ~fingerprint:"fp1" in
      Db.add db (entry 512 384);
      Db.save db ~file:path;
      (match Db.load ~file:path ~fingerprint:"fp1" with
      | Ok (db', Db.Loaded) ->
          Alcotest.(check int) "loaded entry" 1 (Db.length db')
      | Ok _ -> Alcotest.fail "expected Loaded"
      | Error msg -> Alcotest.fail msg);
      (* A new calibration fingerprint discards everything: stale
         winners must not survive a re-probe. *)
      (match Db.load ~file:path ~fingerprint:"fp2" with
      | Ok (db', Db.Invalidated) ->
          Alcotest.(check int) "invalidation empties" 0 (Db.length db');
          Alcotest.(check string)
            "restamped with the new fingerprint" "fp2" (Db.fingerprint db')
      | Ok _ -> Alcotest.fail "expected Invalidated"
      | Error msg -> Alcotest.fail msg);
      (* Unparseable bytes are an error, not a silent fresh start. *)
      let oc = open_out path in
      output_string oc "garbage";
      close_out oc;
      match Db.load ~file:path ~fingerprint:"fp1" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected Error on garbage")

let test_atomic_save () =
  with_temp_file (fun path ->
      let db = Db.create ~fingerprint:"fp" in
      Db.add db (entry 512 384);
      Db.save db ~file:path;
      (* Repeated saves land atomically on the same path, and the file
         parses after each. *)
      Db.add db (entry 48 1000);
      Db.save db ~file:path;
      let ic = open_in_bin path in
      let bytes =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Db.of_json bytes with
      | Ok db' -> Alcotest.(check int) "both entries" 2 (Db.length db')
      | Error msg -> Alcotest.fail msg)

let test_validation () =
  let db = Db.create ~fingerprint:"f" in
  Alcotest.check_raises "non-positive shape rejected"
    (Invalid_argument "Db.add: m, n and nb must be >= 1") (fun () ->
      Db.add db (entry 0 4))

let tests =
  [
    Alcotest.test_case "JSON round-trip" `Quick test_roundtrip;
    Alcotest.test_case "pre-tier DBs load as scalar" `Quick
      test_pre_tier_entries_load;
    Alcotest.test_case "add replaces per shape" `Quick test_add_replaces;
    Alcotest.test_case "hostile bytes are errors" `Quick test_hostile_bytes;
    Alcotest.test_case "load: fresh / loaded / invalidated" `Quick
      test_load_statuses;
    Alcotest.test_case "atomic save round-trips" `Quick test_atomic_save;
    Alcotest.test_case "entry validation" `Quick test_validation;
  ]
