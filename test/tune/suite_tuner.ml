open Xpose_core
open Xpose_tune

let probe gbps = { Xpose_obs.Calibrate.gbps; ns_per_byte = 1.0 /. gbps }

let cal =
  {
    Xpose_obs.Calibrate.elems = 1 lsl 16;
    repeats = 3;
    panel_width = 16;
    stream = probe 40.0;
    gather = probe 16.0;
    scatter = probe 10.0;
    permute = probe 8.0;
    ghz = None;
  }

let rates = Pass_cost.rates_of_calibration cal
let space = Space.make ()

let tune_one ?(budget_ms = 20.0) db ~m ~n ~nb =
  Tuner.tune_shape ~cal ~rates ~db ~space ~budget_ms ~repeats:1 ~keep:4 ~m ~n
    ~nb ()

let test_winner_never_slower_than_default () =
  let db = Db.create ~fingerprint:"fp" in
  let o = tune_one db ~m:96 ~n:72 ~nb:1 in
  Alcotest.(check bool) "not a hit on a fresh DB" false o.Tuner.db_hit;
  Alcotest.(check bool) "something was timed" true (o.Tuner.timed >= 1);
  Alcotest.(check bool)
    "winner <= default (default is always in the timed set)" true
    (o.Tuner.winner.Measure.measured_ns <= o.Tuner.default_ns);
  Alcotest.(check bool)
    "default floor was actually measured" true
    (Float.is_finite o.Tuner.default_ns && o.Tuner.default_ns > 0.0)

let test_second_run_is_pure_db_hit () =
  let db = Db.create ~fingerprint:"fp" in
  let first = tune_one db ~m:64 ~n:48 ~nb:1 in
  Alcotest.(check bool) "first run times" true (first.Tuner.timed > 0);
  let second = tune_one db ~m:64 ~n:48 ~nb:1 in
  Alcotest.(check bool) "second run is a DB hit" true second.Tuner.db_hit;
  Alcotest.(check int) "second run performs zero timing runs" 0
    second.Tuner.timed;
  Alcotest.(check bool)
    "hit returns the recorded winner" true
    (Tune_params.equal second.Tuner.winner.Measure.params
       first.Tuner.winner.Measure.params)

let test_zero_budget_still_gates () =
  (* Even with no budget at all, the first candidate and the default
     are timed, so a winner and its floor always exist. *)
  let db = Db.create ~fingerprint:"fp" in
  let o = tune_one ~budget_ms:0.0 db ~m:48 ~n:36 ~nb:1 in
  Alcotest.(check bool) "timed at least one" true (o.Tuner.timed >= 1);
  Alcotest.(check bool) "timed at most two under zero budget" true
    (o.Tuner.timed <= 2);
  Alcotest.(check bool)
    "winner <= default" true
    (o.Tuner.winner.Measure.measured_ns <= o.Tuner.default_ns)

let with_temp_file f =
  let path = Filename.temp_file "xpose_test_tuner" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_fingerprint_invalidation_forces_retune () =
  with_temp_file (fun path ->
      Sys.remove path;
      (* Tune under fp1 and persist. *)
      let outcomes =
        match Db.load ~file:path ~fingerprint:"fp1" with
        | Ok (db, _) ->
            Tuner.tune ~db_file:path ~cal ~db ~space ~budget_ms:20.0
              ~repeats:1 ~keep:4
              [ (64, 48, 1) ]
        | Error msg -> Alcotest.fail msg
      in
      Alcotest.(check int) "one outcome" 1 (List.length outcomes);
      (* Same fingerprint: the reload is pure DB hits. *)
      (match Db.load ~file:path ~fingerprint:"fp1" with
      | Ok (db, Db.Loaded) ->
          let o =
            List.hd
              (Tuner.tune ~db_file:path ~cal ~db ~space ~budget_ms:20.0
                 ~repeats:1 ~keep:4
                 [ (64, 48, 1) ])
          in
          Alcotest.(check bool) "db hit" true o.Tuner.db_hit;
          Alcotest.(check int) "zero timing runs" 0 o.Tuner.timed
      | Ok _ -> Alcotest.fail "expected Loaded"
      | Error msg -> Alcotest.fail msg);
      (* A re-calibration (new fingerprint) discards the file's entries
         and the same shape is timed again. *)
      match Db.load ~file:path ~fingerprint:"fp2" with
      | Ok (db, Db.Invalidated) ->
          let o =
            List.hd
              (Tuner.tune ~db_file:path ~cal ~db ~space ~budget_ms:20.0
                 ~repeats:1 ~keep:4
                 [ (64, 48, 1) ])
          in
          Alcotest.(check bool) "re-tuned, not a hit" false o.Tuner.db_hit;
          Alcotest.(check bool) "timed again" true (o.Tuner.timed > 0)
      | Ok _ -> Alcotest.fail "expected Invalidated"
      | Error msg -> Alcotest.fail msg)

let test_batched_tuning () =
  let db = Db.create ~fingerprint:"fp" in
  let o = tune_one db ~m:48 ~n:36 ~nb:4 in
  Alcotest.(check bool) "winner <= default" true
    (o.Tuner.winner.Measure.measured_ns <= o.Tuner.default_ns);
  match Db.find db ~m:48 ~n:36 with
  | Some e -> Alcotest.(check int) "nb recorded" 4 e.Db.nb
  | None -> Alcotest.fail "entry missing"

let tests =
  [
    Alcotest.test_case "winner never slower than default" `Quick
      test_winner_never_slower_than_default;
    Alcotest.test_case "second run is a pure DB hit" `Quick
      test_second_run_is_pure_db_hit;
    Alcotest.test_case "zero budget still times the gate pair" `Quick
      test_zero_budget_still_gates;
    Alcotest.test_case "fingerprint invalidation forces re-tune" `Quick
      test_fingerprint_invalidation_forces_retune;
    Alcotest.test_case "batched shapes tune and record nb" `Quick
      test_batched_tuning;
  ]
