open Xpose_harness

let contains ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let is_wellformed doc =
  contains ~sub:"<?xml" doc
  && contains ~sub:"<svg" doc
  && contains ~sub:"</svg>" doc
  (* every opened rect/text/line/polyline/circle is self-closed *)
  && not (contains ~sub:"nan" (String.lowercase_ascii doc))

let test_histogram () =
  let doc = Svg.histogram ~title:"t" ~unit:"GB/s" [| 1.0; 2.0; 2.5; 9.0 |] in
  Alcotest.(check bool) "wellformed" true (is_wellformed doc);
  Alcotest.(check bool) "median marker" true (contains ~sub:"median" doc);
  Alcotest.(check bool) "bars present" true (contains ~sub:"<rect" doc);
  Alcotest.check_raises "empty" (Invalid_argument "Svg.histogram: empty sample")
    (fun () -> ignore (Svg.histogram ~title:"x" ~unit:"" [||]))

let test_histogram_constant () =
  let doc = Svg.histogram ~title:"c" ~unit:"u" [| 3.0; 3.0 |] in
  Alcotest.(check bool) "constant sample renders" true (is_wellformed doc)

let test_heatmap () =
  let doc =
    Svg.heatmap ~title:"hm" ~xlabel:"n" ~ylabel:"m" ~xs:[| 1.0; 2.0; 3.0 |]
      ~ys:[| 10.0; 20.0 |]
      (fun xi yi -> float_of_int ((xi * 10) + yi))
  in
  Alcotest.(check bool) "wellformed" true (is_wellformed doc);
  (* 6 cells + frame + legend steps *)
  let rects = ref 0 in
  let rec count i =
    match String.index_from_opt doc i '<' with
    | Some k ->
        if k + 5 <= String.length doc && String.sub doc k 5 = "<rect" then
          incr rects;
        count (k + 1)
    | None -> ()
  in
  count 0;
  Alcotest.(check bool) "has cells and legend" true (!rects > 6 + 32)

let test_series () =
  let doc =
    Svg.series ~title:"s" ~xlabel:"x" ~ylabel:"y" ~xs:[| 4.0; 8.0; 12.0 |]
      [ ("A", [| 1.0; 2.0; 3.0 |]); ("B", [| 3.0; 2.0; 1.0 |]) ]
  in
  Alcotest.(check bool) "wellformed" true (is_wellformed doc);
  Alcotest.(check bool) "two polylines" true
    (contains ~sub:"polyline" doc && contains ~sub:">A<" doc
    && contains ~sub:">B<" doc);
  Alcotest.check_raises "mismatch" (Invalid_argument "Svg.series: length mismatch")
    (fun () ->
      ignore
        (Svg.series ~title:"s" ~xlabel:"x" ~ylabel:"y" ~xs:[| 1.0 |]
           [ ("A", [| 1.0; 2.0 |]) ]))

let test_escaping () =
  let doc = Svg.histogram ~title:"a<b & \"c\">" ~unit:"u" [| 1.0 |] in
  Alcotest.(check bool) "escaped" true
    (contains ~sub:"a&lt;b &amp; &quot;c&quot;&gt;" doc)

let test_write_figures () =
  let dir = Filename.temp_file "xpose_svg" "" in
  Sys.remove dir;
  let outcome =
    {
      Outcome.id = "t";
      title = "t";
      rendered = "";
      metrics = [];
      figures = [ ("a.svg", Svg.histogram ~title:"a" ~unit:"u" [| 1.0 |]) ];
    }
  in
  let written = Outcome.write_figures ~dir outcome in
  Alcotest.(check int) "one file" 1 (List.length written);
  List.iter
    (fun p ->
      Alcotest.(check bool) "exists" true (Sys.file_exists p);
      Sys.remove p)
    written;
  Sys.rmdir dir

let test_experiment_figures_render () =
  (* each figure attached by the fast experiments is well-formed *)
  let o = Exp_access.fig8 ~n_structs:64 () in
  List.iter
    (fun (name, doc) ->
      Alcotest.(check bool) (name ^ " wellformed") true (is_wellformed doc))
    o.Outcome.figures;
  let o = Exp_landscape.fig4 ~points:4 () in
  List.iter
    (fun (name, doc) ->
      Alcotest.(check bool) (name ^ " wellformed") true (is_wellformed doc))
    o.Outcome.figures

let tests =
  [
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram constant" `Quick test_histogram_constant;
    Alcotest.test_case "heatmap" `Quick test_heatmap;
    Alcotest.test_case "series" `Quick test_series;
    Alcotest.test_case "escaping" `Quick test_escaping;
    Alcotest.test_case "write figures" `Quick test_write_figures;
    Alcotest.test_case "experiment figures" `Quick test_experiment_figures_render;
  ]
