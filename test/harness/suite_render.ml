open Xpose_harness

let contains ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let test_histogram () =
  let h =
    Render.histogram ~bins:4 ~title:"t" ~unit:"GB/s" [| 1.0; 2.0; 2.1; 3.9 |]
  in
  Alcotest.(check bool) "has title" true (contains ~sub:"t  (n=4" h);
  Alcotest.(check bool) "marks median" true (contains ~sub:"<- median" h);
  Alcotest.(check int) "4 bin lines + header" 5
    (List.length (String.split_on_char '\n' (String.trim h)));
  Alcotest.check_raises "empty" (Invalid_argument "Render.histogram: empty sample")
    (fun () -> ignore (Render.histogram ~title:"x" ~unit:"" [||]))

let test_histogram_constant () =
  (* all-equal samples must not divide by zero *)
  let h = Render.histogram ~bins:3 ~title:"c" ~unit:"u" [| 5.0; 5.0; 5.0 |] in
  Alcotest.(check bool) "renders" true (String.length h > 0)

let test_table () =
  let t =
    Render.table ~header:[ "a"; "bb" ] ~rows:[ [ "xxx"; "y" ]; [ "1"; "2" ] ]
  in
  let lines = String.split_on_char '\n' (String.trim t) in
  Alcotest.(check int) "rows" 4 (List.length lines);
  Alcotest.(check bool) "aligned" true (contains ~sub:"xxx  y" t);
  Alcotest.check_raises "arity" (Invalid_argument "Render.table: row arity mismatch")
    (fun () -> ignore (Render.table ~header:[ "a" ] ~rows:[ [ "1"; "2" ] ]))

let test_heatmap () =
  let xs = [| 1.0; 2.0 |] and ys = [| 10.0; 20.0; 30.0 |] in
  let h =
    Render.heatmap ~title:"hm" ~xlabel:"n" ~ylabel:"m" ~xs ~ys (fun xi yi ->
        float_of_int (xi + yi))
  in
  Alcotest.(check bool) "title" true (contains ~sub:"hm" h);
  Alcotest.(check bool) "legend" true (contains ~sub:"shade" h);
  Alcotest.(check int) "y rows + 4 header/footer" 7
    (List.length (String.split_on_char '\n' (String.trim h)))

let test_series () =
  let s =
    Render.series ~title:"s" ~xlabel:"x" ~unit:"GB/s" ~xs:[| 4.0; 8.0 |]
      [ ("A", [| 1.0; 2.0 |]); ("B", [| 3.0; 4.0 |]) ]
  in
  Alcotest.(check bool) "columns" true (contains ~sub:"A" s && contains ~sub:"B" s);
  Alcotest.(check bool) "values" true (contains ~sub:"3.00" s)

let test_csv () =
  let c = Render.csv ~header:[ "m"; "n" ] ~rows:[ [| 1.0; 2.0 |]; [| 3.5; 4.0 |] ] in
  Alcotest.(check string) "csv" "m,n\n1,2\n3.5,4\n" c

let test_workload_axis () =
  let a = Workload.axis ~lo:0 ~hi:10 ~points:3 in
  Alcotest.(check (array (float 1e-9))) "axis" [| 0.0; 5.0; 10.0 |] a;
  let single = Workload.axis ~lo:7 ~hi:9 ~points:1 in
  Alcotest.(check (array (float 1e-9))) "single" [| 7.0 |] single

let test_workload_dims () =
  let rng = Rng.create ~seed:1 in
  let dims = Workload.random_dims rng ~lo:10 ~hi:20 ~count:50 in
  Array.iter
    (fun (m, n) ->
      if m < 10 || m >= 20 || n < 10 || n >= 20 then
        Alcotest.failf "dims out of range: %d %d" m n)
    dims

let test_workload_aos () =
  let rng = Rng.create ~seed:2 in
  let shapes =
    Workload.aos_shapes rng ~count:100 ~fields_lo:2 ~fields_hi:32
      ~structs_lo:100 ~structs_hi:10000
  in
  Array.iter
    (fun (structs, fields) ->
      if fields < 2 || fields >= 32 then Alcotest.failf "fields %d" fields;
      if structs < 100 || structs > 10000 then Alcotest.failf "structs %d" structs)
    shapes

let test_struct_bytes_axis () =
  Alcotest.(check (array int)) "words" [| 1; 2; 3; 4 |]
    (Workload.struct_bytes_axis ~word_bytes:4 ~max_bytes:16)

let test_timing () =
  let ns = Timing.time_ns (fun () -> ignore (Sys.opaque_identity (Array.make 10 0))) in
  Alcotest.(check bool) "positive" true (ns >= 0.0);
  Alcotest.(check (float 1e-9)) "eq37" 4.0
    (Timing.throughput_gbps ~elems:100 ~elt_bytes:8 ~ns:400.0)

let tests =
  [
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram constant" `Quick test_histogram_constant;
    Alcotest.test_case "table" `Quick test_table;
    Alcotest.test_case "heatmap" `Quick test_heatmap;
    Alcotest.test_case "series" `Quick test_series;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "workload axis" `Quick test_workload_axis;
    Alcotest.test_case "workload dims" `Quick test_workload_dims;
    Alcotest.test_case "workload aos" `Quick test_workload_aos;
    Alcotest.test_case "struct bytes axis" `Quick test_struct_bytes_axis;
    Alcotest.test_case "timing" `Quick test_timing;
  ]
