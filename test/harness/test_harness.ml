let () =
  Alcotest.run "xpose_harness"
    [
      ("stats_rng", Suite_stats.tests);
      ("render_workload", Suite_render.tests);
      ("experiments", Suite_experiments.tests);
      ("svg", Suite_svg.tests);
    ]
