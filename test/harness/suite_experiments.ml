(* Shape assertions: every experiment runs at a tiny scale and its
   headline metrics must reproduce the paper's qualitative claims. *)

open Xpose_harness

let metric = Outcome.metric

let test_registry () =
  Alcotest.(check (list string))
    "paper order"
    [ "fig1"; "fig2"; "fig3"; "table1"; "fig4"; "fig5"; "fig6"; "table2"; "fig7"; "fig8"; "fig9"; "permute"; "cycles" ]
    (Experiments.ids ());
  Alcotest.(check bool) "find" true ((Experiments.find "fig3").Experiments.id = "fig3");
  Alcotest.(check bool) "missing" true
    (match Experiments.find "nope" with
    | exception Not_found -> true
    | _ -> false)

let test_fig1_fig2 () =
  let o1 = Exp_figures.fig1 () in
  Alcotest.(check (float 0.0)) "element 16 lands at (1,5)" 1.0
    (metric o1 "element16_row");
  Alcotest.(check (float 0.0)) "roundtrip" 1.0 (metric o1 "roundtrip_identity");
  let o2 = Exp_figures.fig2 () in
  Alcotest.(check (float 0.0)) "fig2 final" 1.0
    (metric o2 "final_is_rowmajor_iota")

let test_fig3_shape () =
  (* Tiny but real measurement: the decomposed algorithm must beat the
     cycle-leader baseline. *)
  let o = Exp_cpu.run ~samples:6 ~dim_lo:80 ~dim_hi:260 ~workers:2 () in
  let mkl = metric o "median_mkl_gbps" in
  let c2r = metric o "median_c2r_1t_gbps" in
  Alcotest.(check bool)
    (Printf.sprintf "c2r (%.3f) > mkl (%.3f)" c2r mkl)
    true (c2r > mkl);
  Alcotest.(check bool) "all positive" true (mkl > 0.0)

let test_fig4_fig5_bands () =
  let o4 = Exp_landscape.fig4 ~points:5 () in
  Alcotest.(check bool) "fig4 band beats off-band" true
    (metric o4 "band_median_gbps" > metric o4 "offband_median_gbps");
  let o5 = Exp_landscape.fig5 ~points:5 () in
  Alcotest.(check bool) "fig5 band beats off-band" true
    (metric o5 "band_median_gbps" > metric o5 "offband_median_gbps")

let test_fig6_table2_shape () =
  let o = Exp_gpu_median.run ~samples:40 () in
  let sung = metric o "median_sung_float_gbps" in
  let cf = metric o "median_c2r_float_gbps" in
  let cd = metric o "median_c2r_double_gbps" in
  Alcotest.(check bool)
    (Printf.sprintf "ordering sung %.1f < float %.1f < double %.1f" sung cf cd)
    true
    (sung < cf && cf < cd);
  (* roughly the paper's factors: C2R float ~2.7x Sung; double ~1.37x float *)
  Alcotest.(check bool) "sung gap in range" true (cf /. sung > 1.5 && cf /. sung < 6.0);
  Alcotest.(check bool) "double gap in range" true (cd /. cf > 1.05 && cd /. cf < 2.0)

let test_fig7_shape () =
  let o = Exp_aos.run ~samples:200 () in
  let spec = metric o "median_specialized_gbps" in
  let gen = metric o "median_general_gbps" in
  let mx = metric o "max_specialized_gbps" in
  Alcotest.(check bool)
    (Printf.sprintf "specialized %.1f >> general %.1f" spec gen)
    true
    (spec > 4.0 *. gen);
  (* paper: median 34.3, max 51; we accept the band *)
  Alcotest.(check bool) "median band" true (spec > 15.0 && spec < 60.0);
  Alcotest.(check bool) "max band" true (mx > spec && mx <= 185.0)

let test_fig8_shape () =
  let o = Exp_access.fig8 ~n_structs:256 () in
  Alcotest.(check bool) "store: c2r >> direct at 64B" true
    (metric o "store_c2r_over_direct_64B" > 8.0);
  Alcotest.(check bool) "copy: c2r >> direct at 64B" true
    (metric o "copy_c2r_over_direct_64B" > 4.0);
  Alcotest.(check bool) "vector between" true
    (metric o "store_vector_64B_gbps" > metric o "store_direct_64B_gbps"
    && metric o "store_vector_64B_gbps" < metric o "store_c2r_64B_gbps")

let test_fig9_shape () =
  let o = Exp_access.fig9 ~n_structs:256 () in
  Alcotest.(check bool) "scatter: c2r >= direct" true
    (metric o "scatter_c2r_over_direct_64B" >= 1.0);
  Alcotest.(check bool) "gather: c2r >= direct" true
    (metric o "gather_c2r_over_direct_64B" >= 1.0)

let test_permute_planner () =
  let o = Exp_permute.run ~base:16 ~repeats:3 () in
  (* structural sanity: fractions in range, and the model's choice is
     never catastrophically slower than the measured best *)
  let frac = metric o "chosen_is_fastest_frac" in
  Alcotest.(check bool) "fraction in [0,1]" true (frac >= 0.0 && frac <= 1.0);
  let agree = metric o "pairwise_order_agreement" in
  Alcotest.(check bool)
    (Printf.sprintf "order agreement %.2f above chance" agree)
    true (agree > 0.5);
  Alcotest.(check bool) "chosen within 3x of fastest" true
    (metric o "max_chosen_slowdown" < 3.0)

let test_cycles_imbalance () =
  let o = Exp_cycles.run ~samples:10 ~lo:40 ~hi:200 () in
  (* some matrix in any reasonable sample has a dominant cycle *)
  Alcotest.(check bool) "imbalance exists" true
    (Outcome.metric o "max_longest_cycle_share" > 0.2);
  Alcotest.(check bool) "median sane" true
    (Outcome.metric o "median_longest_cycle_share" <= 1.0)

let test_outcome_render_nonempty () =
  (* run the entire registry at a tiny scale: the driver path for every
     table and figure must produce output and keep its id *)
  List.iter
    (fun spec ->
      let id = spec.Experiments.id in
      let o = spec.Experiments.run ~scale:0.2 in
      Alcotest.(check bool) (id ^ " renders") true
        (String.length o.Outcome.rendered > 0);
      Alcotest.(check string) (id ^ " id") id o.Outcome.id;
      List.iter
        (fun (name, doc) ->
          Alcotest.(check bool) (id ^ "/" ^ name ^ " svg") true
            (String.length doc > 0))
        o.Outcome.figures)
    Experiments.all

let tests =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "fig1/fig2 exact" `Quick test_fig1_fig2;
    Alcotest.test_case "fig3 shape (measured)" `Slow test_fig3_shape;
    Alcotest.test_case "fig4/fig5 bands" `Quick test_fig4_fig5_bands;
    Alcotest.test_case "fig6/table2 ordering" `Quick test_fig6_table2_shape;
    Alcotest.test_case "fig7 specialization" `Quick test_fig7_shape;
    Alcotest.test_case "fig8 orderings" `Quick test_fig8_shape;
    Alcotest.test_case "fig9 orderings" `Quick test_fig9_shape;
    Alcotest.test_case "permute planner sanity" `Quick test_permute_planner;
    Alcotest.test_case "cycles imbalance" `Quick test_cycles_imbalance;
    Alcotest.test_case "whole registry renders" `Slow test_outcome_render_nonempty;
  ]
