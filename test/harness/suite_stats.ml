open Xpose_harness

let test_median () =
  Alcotest.(check (float 1e-9)) "odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "single" 7.0 (Stats.median [| 7.0 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty sample")
    (fun () -> ignore (Stats.median [||]))

let test_percentile () =
  let xs = Array.init 101 float_of_int in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p25" 25.0 (Stats.percentile xs 25.0);
  Alcotest.check_raises "range" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Stats.percentile xs 101.0))

let test_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check bool) "pp" true
    (String.length (Format.asprintf "%a" Stats.pp_summary s) > 0)

let prop_median_bounds =
  QCheck2.Test.make ~name:"median within min/max, percentiles monotone"
    ~count:300
    QCheck2.Gen.(array_size (int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.median
      && s.Stats.median <= s.Stats.max
      && s.Stats.p25 <= s.Stats.median
      && s.Stats.median <= s.Stats.p75
      && s.Stats.p75 <= s.Stats.p99 +. 1e-9)

let test_rng_deterministic () =
  let a = Rng.create ~seed:5 and b = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create ~seed:6 in
  Alcotest.(check bool) "different seed differs" true (Rng.next a <> Rng.next c)

let prop_rng_range =
  QCheck2.Test.make ~name:"int_range stays in range" ~count:500
    QCheck2.Gen.(triple (int_range 0 1000) (int_range 1 1000) small_int)
    (fun (lo, len, seed) ->
      let rng = Rng.create ~seed in
      let v = Rng.int_range rng ~lo ~hi:(lo + len) in
      v >= lo && v < lo + len)

let prop_rng_permutation =
  QCheck2.Test.make ~name:"permutation is a permutation" ~count:200
    QCheck2.Gen.(pair (int_range 1 200) small_int)
    (fun (n, seed) ->
      let p = Rng.permutation (Rng.create ~seed) n in
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) p;
      Array.for_all Fun.id seen)

let test_float_unit () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let f = Rng.float_unit rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float_unit out of range: %f" f
  done

let tests =
  [
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "summary" `Quick test_summary;
    QCheck_alcotest.to_alcotest prop_median_bounds;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    QCheck_alcotest.to_alcotest prop_rng_range;
    QCheck_alcotest.to_alcotest prop_rng_permutation;
    Alcotest.test_case "float_unit range" `Quick test_float_unit;
  ]
