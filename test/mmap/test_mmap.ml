open Xpose_core
open Xpose_mmap

let temp_path () = Filename.temp_file "xpose_mmap" ".mat"

let test_create_and_map () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      File_matrix.create ~path ~elements:100;
      File_matrix.with_map ~path (fun buf ->
          Alcotest.(check int) "size" 100 (Bigarray.Array1.dim buf);
          Alcotest.(check (float 0.0)) "zeroed" 0.0 (Bigarray.Array1.get buf 7);
          for l = 0 to 99 do
            Bigarray.Array1.set buf l (float_of_int (l * 2))
          done);
      (* the write persisted *)
      File_matrix.with_map ~write:false ~path (fun buf ->
          Alcotest.(check (float 0.0)) "persisted" 14.0 (Bigarray.Array1.get buf 7)))

let test_transpose_file () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = 37 and n = 52 in
      File_matrix.create ~path ~elements:(m * n);
      File_matrix.with_map ~path (fun buf ->
          for l = 0 to (m * n) - 1 do
            Bigarray.Array1.set buf l (float_of_int l)
          done);
      File_matrix.transpose_file ~path ~m ~n;
      File_matrix.with_map ~write:false ~path (fun buf ->
          for l = 0 to (m * n) - 1 do
            Alcotest.(check (float 0.0))
              "transposed in the file"
              (float_of_int ((n * (l mod m)) + (l / m)))
              (Bigarray.Array1.get buf l)
          done))

let test_size_mismatch () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      File_matrix.create ~path ~elements:10;
      Alcotest.check_raises "mismatch"
        (Invalid_argument "File_matrix.transpose_file: file does not hold m*n elements")
        (fun () -> File_matrix.transpose_file ~path ~m:3 ~n:4))

let test_generic_functor_on_map () =
  (* mapped buffers are ordinary Storage.Float64 values *)
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = 8 and n = 14 in
      File_matrix.create ~path ~elements:(m * n);
      File_matrix.with_map ~path (fun buf ->
          Storage.fill_iota (module Storage.Float64) buf;
          let original = Instances.F64.copy buf in
          Instances.F64.transpose ~m ~n buf;
          Alcotest.(check bool) "functor works on mapped file" true
            (Instances.F64.is_transpose_of ~m ~n ~original buf)))

let () =
  Alcotest.run "xpose_mmap"
    [
      ( "file_matrix",
        [
          Alcotest.test_case "create and map" `Quick test_create_and_map;
          Alcotest.test_case "transpose in file" `Quick test_transpose_file;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
          Alcotest.test_case "generic functor on map" `Quick
            test_generic_functor_on_map;
        ] );
    ]
