open Xpose_core
open Xpose_mmap

let temp_path () = Filename.temp_file "xpose_mmap" ".mat"

let test_create_and_map () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      File_matrix.create ~path ~elements:100;
      File_matrix.with_map ~path (fun buf ->
          Alcotest.(check int) "size" 100 (Bigarray.Array1.dim buf);
          Alcotest.(check (float 0.0)) "zeroed" 0.0 (Bigarray.Array1.get buf 7);
          for l = 0 to 99 do
            Bigarray.Array1.set buf l (float_of_int (l * 2))
          done);
      (* the write persisted *)
      File_matrix.with_map ~write:false ~path (fun buf ->
          Alcotest.(check (float 0.0)) "persisted" 14.0 (Bigarray.Array1.get buf 7)))

let test_transpose_file () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = 37 and n = 52 in
      File_matrix.create ~path ~elements:(m * n);
      File_matrix.with_map ~path (fun buf ->
          for l = 0 to (m * n) - 1 do
            Bigarray.Array1.set buf l (float_of_int l)
          done);
      File_matrix.transpose_file ~path ~m ~n ();
      File_matrix.with_map ~write:false ~path (fun buf ->
          for l = 0 to (m * n) - 1 do
            Alcotest.(check (float 0.0))
              "transposed in the file"
              (float_of_int ((n * (l mod m)) + (l / m)))
              (Bigarray.Array1.get buf l)
          done))

let test_size_mismatch () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      File_matrix.create ~path ~elements:10;
      Alcotest.check_raises "mismatch"
        (Invalid_argument "File_matrix.transpose_file: file does not hold m*n elements")
        (fun () -> File_matrix.transpose_file ~path ~m:3 ~n:4 ()))

let test_misaligned_file () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "12 bytes here";
      close_out oc;
      Alcotest.check_raises "misaligned"
        (Invalid_argument "File_matrix.with_map: file length is not a multiple of 8")
        (fun () -> File_matrix.with_map ~write:false ~path (fun _ -> ())))

(* Edge shapes, each checked against the in-RAM kernels on an identical
   buffer: degenerate rows/columns (the transpose is the identity),
   prime x prime, and a shape whose fused-panel count (ceil (n/16) = 5)
   is not a multiple of any pool worker count the suites use. *)
let test_edge_shapes () =
  List.iter
    (fun (m, n) ->
      let path = temp_path () in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          File_matrix.create ~path ~elements:(m * n);
          let ram = Storage.Float64.create (m * n) in
          Storage.fill_iota (module Storage.Float64) ram;
          File_matrix.with_map ~path (fun buf ->
              Storage.fill_iota (module Storage.Float64) buf);
          Kernels_f64.transpose ~m ~n ram;
          File_matrix.transpose_file ~path ~m ~n ();
          File_matrix.with_map ~write:false ~path (fun buf ->
              let ok = ref true in
              for l = 0 to (m * n) - 1 do
                if Bigarray.Array1.get buf l <> Storage.Float64.get ram l then
                  ok := false
              done;
              Alcotest.(check bool)
                (Printf.sprintf "%dx%d matches the in-RAM oracle" m n)
                true !ok)))
    [ (1, 40); (40, 1); (13, 17); (23, 29); (31, 78) ]

let test_workspace_reuse () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = 24 and n = 36 in
      File_matrix.create ~path ~elements:(m * n);
      File_matrix.with_map ~path (fun buf ->
          Storage.fill_iota (module Storage.Float64) buf);
      (* one workspace across both directions: the round trip must land
         back on the identity *)
      let ws = Workspace.F64.create () in
      File_matrix.transpose_file ~ws ~path ~m ~n ();
      File_matrix.transpose_file ~ws ~path ~m:n ~n:m ();
      File_matrix.with_map ~write:false ~path (fun buf ->
          let ok = ref true in
          for l = 0 to (m * n) - 1 do
            if Bigarray.Array1.get buf l <> float_of_int l then ok := false
          done;
          Alcotest.(check bool) "round trip through one workspace" true !ok))

let test_generic_functor_on_map () =
  (* mapped buffers are ordinary Storage.Float64 values *)
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = 8 and n = 14 in
      File_matrix.create ~path ~elements:(m * n);
      File_matrix.with_map ~path (fun buf ->
          Storage.fill_iota (module Storage.Float64) buf;
          let original = Instances.F64.copy buf in
          Instances.F64.transpose ~m ~n buf;
          Alcotest.(check bool) "functor works on mapped file" true
            (Instances.F64.is_transpose_of ~m ~n ~original buf)))

let () =
  Alcotest.run "xpose_mmap"
    [
      ( "file_matrix",
        [
          Alcotest.test_case "create and map" `Quick test_create_and_map;
          Alcotest.test_case "transpose in file" `Quick test_transpose_file;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
          Alcotest.test_case "misaligned file" `Quick test_misaligned_file;
          Alcotest.test_case "edge shapes vs in-RAM oracle" `Quick
            test_edge_shapes;
          Alcotest.test_case "workspace reuse" `Quick test_workspace_reuse;
          Alcotest.test_case "generic functor on map" `Quick
            test_generic_functor_on_map;
        ] );
    ]
